//! Incremental plan programs: streaming admission with feature-row
//! caching and common-subexpression elimination.
//!
//! The batch engine ([`crate::infer::PlanProgram`]) makes steady-state
//! serving fast, but a *one-shot* request is compile-bound: on the mixed
//! 320-plan bench stream, compilation is ~36 % of the request, and Table-2
//! featurization alone is ~36 % of compilation. The paper's headline use
//! case — admission control over a live query stream (§1) — admits and
//! retires **one plan at a time**; recompiling the whole resident batch
//! per arrival is the wrong asymptotic. A [`ProgramBuilder`] maintains a
//! resident wavefront program *mutably*:
//!
//! * [`ProgramBuilder::admit`] lowers one plan and appends its nodes into
//!   the existing `(height, OpKind)` wavefront chunks (a new chunk is
//!   opened only when every open chunk of that wavefront is at the
//!   32-row cache-sized limit), touching nothing else in the program;
//! * [`ProgramBuilder::retire`] releases a plan's nodes — chunk slots are
//!   compacted by swap-remove and output rows return to a free-list for
//!   the next admission;
//! * a **feature-row cache** ([`qpp_plansim::features::FeatureCache`])
//!   keyed by the exact per-node content key
//!   ([`crate::lower::NodeContentKey`]) skips Table-2 featurization for
//!   every node shape seen before;
//! * **common-subexpression elimination**: subtrees that are
//!   node-for-node identical ([`crate::lower::SubtreeKey`]) map to *one*
//!   set of wavefront rows, reference-counted across plans — template-
//!   heavy workloads (TPC-DS) share scans and whole join arms, shrinking
//!   every gemm;
//! * a **whole-plan prediction memo** ([`PredictionCache`]) keyed by the
//!   full lossless plan key (every node's content words + the CSR child
//!   structure + the clamp mode) turns an exact repeat of a previously
//!   served plan — the dominant request class under Zipfian template
//!   skew — into a hash probe instead of a wavefront run, on every
//!   predict surface (one-shot, sharded, micro-batched).
//!
//! # Determinism
//!
//! Predictions are **bit-identical** to a fresh
//! [`crate::infer::PlanProgram::compile`] of the same resident set, at any
//! thread count. Three facts compose into that guarantee:
//!
//! 1. the fused gemm kernel is *row-invariant* — a row's output bits
//!    depend only on its own input, the weights and the bias, never on
//!    which chunk (or slot) the row occupies
//!    ([`qpp_nn::Matrix::matmul_bias_act_into`], property-tested);
//! 2. the feature cache and CSE map are keyed by **lossless content
//!    keys**, not hashes — a hit is bit-identical to recomputation by
//!    construction;
//! 3. scheduling still runs heights strictly ascending, so every child
//!    row is written before any parent reads it, exactly as in the batch
//!    engine.
//!
//! The differential suite (`tests/stream_differential.rs`) holds random
//! admit/retire/predict interleavings to exact equality against fresh
//! compiles, on 1 and 4 threads, in debug and release.

use crate::config::TargetCodec;
use crate::infer::{clamp_plan_envelope, run_schedule, Step, STEP_CHUNK_ROWS};
use crate::lower::{lower, Lowering, NodeContentKey, SubtreeKey};
use qpp_plansim::util::Fnv1a;
use crate::tree::RatioCaps;
use crate::unit::{PackedUnits, UnitSet};
use qpp_nn::{BufferPool, Executor, Matrix};
use qpp_plansim::features::{FeatureCache, Featurizer, Whitener};
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::PlanNode;
use std::collections::{BTreeMap, HashMap};

/// Handle to one resident plan of a [`ProgramBuilder`]; returned by
/// [`ProgramBuilder::admit`] and consumed by [`ProgramBuilder::retire`]
/// and the per-plan predictors. Ids are never reused within a builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanId(u64);

/// One unique (shared) subtree resident in the program: the physical
/// wavefront row it owns plus where that row's gemm slot lives.
#[derive(Debug, Default)]
struct SharedNode {
    /// Global output-buffer row (stable for the node's lifetime).
    row: usize,
    /// Number of (plan, position) references — CSE sharing across *and
    /// within* plans both count here; the node is released at zero.
    refs: u32,
    /// Wavefront chunk holding this node's gemm slot.
    step: u32,
    /// Member index within that chunk (maintained under swap-remove).
    slot: u32,
    /// Height from the leaves (the wavefront level key).
    height: u32,
    /// The CSE map key, kept for removal on release.
    key: SubtreeKey,
}

/// Per-plan bookkeeping: position-indexed maps into the shared-node slab
/// (a plan's rows are **not** contiguous — they interleave with other
/// plans' and may be shared with them).
struct Resident {
    lowering: Lowering,
    kinds: Vec<OpKind>,
    /// Shared-node id per post-order position.
    node_ids: Vec<u32>,
    /// Output row per post-order position (denormalized from `node_ids`
    /// for decode speed).
    rows: Vec<usize>,
}

/// Aggregate statistics of a [`ProgramBuilder`]'s resident program —
/// the observability surface for streaming serving (`qpp predict
/// --stream` prints this).
#[derive(Debug, Clone, Copy)]
pub struct ProgramStats {
    /// Plans currently resident.
    pub resident_plans: usize,
    /// Logical operator nodes across all resident plans (what a fresh
    /// batch compile would lay out as gemm rows).
    pub logical_nodes: usize,
    /// Physical wavefront gemm rows after CSE sharing.
    pub shared_rows: usize,
    /// Live wavefront chunks (gemm calls per unit layer per run).
    pub steps: usize,
    /// Height levels (barrier count of a parallel run).
    pub levels: usize,
    /// Distinct node shapes memoized by the feature-row cache.
    pub feat_cache_entries: usize,
    /// Feature lookups served from the cache.
    pub feat_cache_hits: u64,
    /// Feature lookups that had to featurize.
    pub feat_cache_misses: u64,
    /// Cumulative admissions that mapped a subtree onto existing rows.
    pub cse_hits: u64,
    /// Whole-plan predictions currently memoized (this generation of the
    /// [`PredictionCache`]).
    pub pred_cache_entries: usize,
    /// Predict requests answered straight from the whole-plan memo.
    pub pred_cache_hits: u64,
    /// Predict requests that missed the memo (and then seeded it).
    pub pred_cache_misses: u64,
    /// Memo entries dropped by generational resets at the entry cap.
    pub pred_cache_evictions: u64,
    /// Cumulative wall time of memo hits (key assembly + probe), ns.
    pub pred_cache_hit_ns: u64,
}

impl ProgramStats {
    /// Logical-to-physical row ratio of the resident set: `> 1.0` means
    /// CSE is actively shrinking the gemms (1.0 = no sharing).
    pub fn dedup_ratio(&self) -> f64 {
        if self.shared_rows == 0 {
            1.0
        } else {
            self.logical_nodes as f64 / self.shared_rows as f64
        }
    }

    /// Fraction of feature lookups served from the cache.
    pub fn feat_hit_rate(&self) -> f64 {
        let total = self.feat_cache_hits + self.feat_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.feat_cache_hits as f64 / total as f64
        }
    }

    /// Fraction of whole-plan predict probes served from the memo.
    pub fn pred_hit_rate(&self) -> f64 {
        let total = self.pred_cache_hits + self.pred_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.pred_cache_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} resident plans, {} nodes -> {} gemm rows (dedup {:.2}x), \
             {} steps / {} levels, feature cache {} shapes ({:.0}% hit), \
             plan memo {} plans ({:.0}% hit)",
            self.resident_plans,
            self.logical_nodes,
            self.shared_rows,
            self.dedup_ratio(),
            self.steps,
            self.levels,
            self.feat_cache_entries,
            self.feat_hit_rate() * 100.0,
            self.pred_cache_entries,
            self.pred_hit_rate() * 100.0,
        )
    }
}

/// Default per-shard entry cap of the whole-plan [`PredictionCache`].
/// A memoized plan key is a few hundred words at paper-tier plan sizes,
/// so 16 Ki entries bound one shard's memo to a few tens of MiB worst
/// case while comfortably covering any templated workload's working set.
pub const PREDICTION_CACHE_MAX_ENTRIES: usize = 1 << 14;

/// Exact-match memo from a **lossless whole-plan key** to the decoded,
/// envelope-clamped root prediction — the per-shard cache that turns an
/// exact repeat of a served plan into a hash probe instead of a run.
///
/// The key is not a hash of the plan: it is a parseable *encoding* of
/// everything the prediction depends on — the clamp mode, the node
/// count, and per post-order node its 12 [`NodeContentKey`] content
/// words followed by its CSR child positions. An [`Fnv1a`] digest of
/// those words only **routes** a probe to a bucket; full key-word
/// equality **decides** the hit, so digest collisions are disambiguated
/// by comparison and false positives are impossible. A hit is therefore
/// bitwise-equal to a fresh run by construction: the content key is the
/// same lossless superset featurization reads (see
/// [`FeatureCache`]), the structure words pin the exact gemm inputs,
/// and the model itself cannot change under the cache — builders borrow
/// the fitted parts for `'m`, and across tenants each stream (and its
/// shard caches) lives under its model's checkpoint fingerprint in
/// [`crate::Tenants`], so a different checkpoint is a different cache.
///
/// Memory is bounded by the same generational-reset idiom as
/// [`FeatureCache`]: inserting at the entry cap clears the whole memo
/// (counted in `evictions`) rather than paying per-entry LRU
/// bookkeeping on the hit path.
#[derive(Debug)]
pub struct PredictionCache {
    /// Key digest → entries whose full key words fold to it. The inner
    /// vec is almost always a singleton; it exists so digest collisions
    /// are harmless rather than wrong.
    buckets: HashMap<u64, Vec<(Vec<u64>, f64)>>,
    entries: usize,
    max_entries: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    hit_ns: u64,
}

impl Default for PredictionCache {
    fn default() -> PredictionCache {
        PredictionCache::new()
    }
}

impl PredictionCache {
    /// An empty memo with the default entry cap
    /// ([`PREDICTION_CACHE_MAX_ENTRIES`]).
    pub fn new() -> PredictionCache {
        PredictionCache {
            buckets: HashMap::new(),
            entries: 0,
            max_entries: PREDICTION_CACHE_MAX_ENTRIES,
            hits: 0,
            misses: 0,
            evictions: 0,
            hit_ns: 0,
        }
    }

    /// Replaces the entry cap (clamped to at least 1). Takes effect at
    /// the next insert; existing entries are kept until then.
    pub fn set_max_entries(&mut self, max_entries: usize) {
        self.max_entries = max_entries.max(1);
    }

    /// Routing digest of a key's words (FNV-1a, same mixer as
    /// [`plan_shard_hash`] — deterministic across platforms and runs).
    fn digest(key: &[u64]) -> u64 {
        let mut h = Fnv1a::new();
        for &w in key {
            h.mix(w);
        }
        h.finish()
    }

    /// Probes the memo. A hit compares the full key words; counters are
    /// bumped either way. Allocation-free.
    fn lookup(&mut self, key: &[u64]) -> Option<f64> {
        let hit = self
            .buckets
            .get(&Self::digest(key))
            .and_then(|b| b.iter().find(|(k, _)| k == key))
            .map(|&(_, v)| v);
        match hit {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        hit
    }

    /// Memoizes `value` under `key`, generationally resetting first when
    /// the cap is reached. Re-inserting a present key is a no-op (the
    /// value would be bit-identical anyway — see the type docs).
    fn insert(&mut self, key: &[u64], value: f64) {
        if self.entries >= self.max_entries {
            self.evictions += self.entries as u64;
            self.buckets.clear();
            self.entries = 0;
        }
        let bucket = self.buckets.entry(Self::digest(key)).or_default();
        if bucket.iter().any(|(k, _)| k == key) {
            return;
        }
        bucket.push((key.to_vec(), value));
        self.entries += 1;
    }

    /// Entries memoized in the current generation.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Probes answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped by generational resets.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Cumulative wall time of hits (key assembly + probe), ns.
    pub fn hit_ns(&self) -> u64 {
        self.hit_ns
    }
}

/// A mutable, incrementally-maintained wavefront program over a resident
/// plan set: the streaming counterpart of [`crate::infer::PlanProgram`].
///
/// Obtain one from [`crate::QppNet::serve_stream`] (the builder borrows
/// the fitted model, so a refit while a builder is live is a *compile
/// error* rather than a stale-program panic), then drive the admission
/// loop:
///
/// ```
/// use qppnet::{QppConfig, QppNet};
/// use qpp_plansim::prelude::*;
///
/// let ds = Dataset::generate(Workload::TpcH, 1.0, 24, 3);
/// let mut model = QppNet::new(QppConfig { epochs: 1, ..QppConfig::tiny() }, &ds.catalog);
/// model.fit(&ds.plans.iter().take(16).collect::<Vec<_>>());
///
/// let mut stream = model.serve_stream();
/// let mut window = std::collections::VecDeque::new();
/// for plan in &ds.plans {
///     let id = stream.admit(&plan.root);
///     window.push_back(id);
///     let _latency_ms = stream.predict_root(id); // admission decision
///     if window.len() > 8 {
///         stream.retire(window.pop_front().unwrap()); // query finished
///     }
/// }
/// assert_eq!(stream.len(), 8);
/// println!("{}", stream.stats());
/// ```
///
/// Predictions equal a fresh [`crate::infer::PlanProgram::compile`] of
/// the resident set bit for bit (see the module docs for why), so the
/// builder is purely an asymptotic win: admission costs O(plan) instead
/// of O(resident batch).
pub struct ProgramBuilder<'m> {
    featurizer: &'m Featurizer,
    whitener: &'m Whitener,
    units: &'m UnitSet,
    codec: &'m TargetCodec,
    caps: Option<&'m RatioCaps>,
    out_w: usize,
    /// Packed-panel kernel state (`qpp_nn::packed`), built **once** in
    /// [`ProgramBuilder::new`]: the `'m` borrow of `units` guarantees the
    /// weights cannot change for the builder's whole lifetime, so the
    /// resident stream never pays a repack — unlike the batch
    /// [`crate::infer::PlanProgram`], which takes units per call.
    packed: PackedUnits,

    /// Wavefront chunk slab; entries listed in no `wavefronts` value are
    /// retired and await reuse via `step_free`.
    steps: Vec<Step>,
    /// Member slot → shared-node id, parallel to `steps` (back-pointers
    /// for the swap-remove compaction on retire).
    step_nodes: Vec<Vec<u32>>,
    step_free: Vec<u32>,
    /// Live chunk ids per `(height, family)` wavefront; BTreeMap order is
    /// the execution order (heights ascending, families stable).
    wavefronts: BTreeMap<(u32, u8), Vec<u32>>,
    /// Cached schedule (step ids per height level), rebuilt lazily after
    /// topology changes.
    levels: Vec<Vec<u32>>,
    schedule_dirty: bool,

    /// Unique-subtree slab + free list.
    nodes: Vec<SharedNode>,
    node_free: Vec<u32>,
    live_nodes: usize,
    /// Exact subtree key → shared-node id (the CSE map).
    cse: HashMap<SubtreeKey, u32>,
    cse_hits: u64,

    feat_cache: FeatureCache<NodeContentKey>,
    feat_scratch: Vec<f32>,
    child_scratch: Vec<usize>,
    /// One-shot predict buffers (see [`ProgramBuilder::predict_oneshot`]).
    oneshot: OneshotScratch,
    /// Whole-plan → prediction memo (see [`PredictionCache`]).
    pred_cache: PredictionCache,
    pred_cache_on: bool,
    /// Reusable whole-plan key words; a warm probe assembles the key
    /// here without touching the allocator.
    key_scratch: Vec<u64>,

    /// `shared rows × out_w`; row `r` holds node `r`'s `(latency ⌢ data)`.
    /// Retired rows are recycled through `row_free` before the matrix
    /// grows.
    outputs: Matrix,
    row_free: Vec<usize>,

    pool: BufferPool,

    plans: BTreeMap<u64, Resident>,
    next_id: u64,
    logical_nodes: usize,
}

impl<'m> ProgramBuilder<'m> {
    /// Creates an empty resident program against a fitted model's parts.
    /// Most callers want [`crate::QppNet::serve_stream`], which wires the
    /// fitted state (and the configured clamping policy) automatically.
    pub fn new(
        featurizer: &'m Featurizer,
        whitener: &'m Whitener,
        units: &'m UnitSet,
        codec: &'m TargetCodec,
        caps: Option<&'m RatioCaps>,
    ) -> ProgramBuilder<'m> {
        let out_w = units.out_size();
        ProgramBuilder {
            featurizer,
            whitener,
            packed: PackedUnits::pack(units, false),
            units,
            codec,
            caps,
            out_w,
            steps: Vec::new(),
            step_nodes: Vec::new(),
            step_free: Vec::new(),
            wavefronts: BTreeMap::new(),
            levels: Vec::new(),
            schedule_dirty: false,
            nodes: Vec::new(),
            node_free: Vec::new(),
            live_nodes: 0,
            cse: HashMap::new(),
            cse_hits: 0,
            feat_cache: FeatureCache::new(),
            feat_scratch: Vec::new(),
            child_scratch: Vec::new(),
            oneshot: OneshotScratch::default(),
            pred_cache: PredictionCache::new(),
            pred_cache_on: true,
            key_scratch: Vec::new(),
            outputs: Matrix::zeros(0, out_w),
            row_free: Vec::new(),
            pool: BufferPool::new(),
            plans: BTreeMap::new(),
            next_id: 0,
            logical_nodes: 0,
        }
    }

    /// Admits one plan into the resident program without touching the
    /// rest of the batch: every node either maps onto an existing shared
    /// subtree (CSE hit — no new rows at all) or is appended into the
    /// open chunk of its `(height, family)` wavefront, featurizing only
    /// shapes the cache has never seen.
    ///
    /// # Panics
    /// Panics if a node's child count does not match its family's arity
    /// (a malformed plan), or if feature sizes disagree with the fitted
    /// model (a featurizer/model mismatch).
    pub fn admit(&mut self, root: &PlanNode) -> PlanId {
        let nodes_po = root.postorder();
        let lowering = lower(root);
        let n = nodes_po.len();
        // Validate the whole plan BEFORE touching any builder state, so a
        // rejection is atomic — a caller that catches the panic keeps a
        // consistent resident program with no orphaned rows. Two checks,
        // both hard asserts exactly as in `PlanProgram::compile`: arity
        // (plans can arrive from unvalidated JSON) and the
        // featurizer-vs-model shape agreement (a miswired builder).
        for (k, node) in nodes_po.iter().enumerate() {
            let kind = node.op.kind();
            assert_eq!(
                lowering.children_of(k).len(),
                kind.arity(),
                "malformed plan: {kind:?} node with {} children (arity {})",
                lowering.children_of(k).len(),
                kind.arity()
            );
            assert_eq!(
                self.featurizer.feature_size(kind) + kind.arity() * self.out_w,
                self.units.unit(kind).in_dim(),
                "feature/model shape mismatch for {kind:?}"
            );
        }
        let mut node_ids: Vec<u32> = Vec::with_capacity(n);
        let mut rows: Vec<usize> = Vec::with_capacity(n);
        let mut kinds: Vec<OpKind> = Vec::with_capacity(n);
        let mut feat = std::mem::take(&mut self.feat_scratch);
        let mut child_rows = std::mem::take(&mut self.child_scratch);

        for (k, node) in nodes_po.iter().enumerate() {
            let kind = node.op.kind();
            kinds.push(kind);
            let content = NodeContentKey::of(node);
            let children: Vec<u32> =
                lowering.children_of(k).iter().map(|&c| node_ids[c]).collect();
            let key = SubtreeKey { content, children };
            if let Some(&id) = self.cse.get(&key) {
                // An identical subtree is already resident: share its rows.
                self.nodes[id as usize].refs += 1;
                self.cse_hits += 1;
                rows.push(self.nodes[id as usize].row);
                node_ids.push(id);
                continue;
            }
            self.feat_cache.features_into(self.featurizer, self.whitener, node, content, &mut feat);
            // Shape agreement was pre-validated above; this only guards
            // the featurizer returning a row of its own declared size.
            debug_assert_eq!(
                feat.len() + kind.arity() * self.out_w,
                self.units.unit(kind).in_dim(),
                "feature/model shape mismatch for {kind:?}"
            );
            let height = lowering.height_of(k) as u32;
            let row = self.alloc_row();
            child_rows.clear();
            child_rows.extend(key.children.iter().map(|&c| self.nodes[c as usize].row));
            let nid = self.alloc_node();
            let (step, slot) = self.place(height, kind, &feat, &child_rows, nid, row);
            self.nodes[nid as usize] =
                SharedNode { row, refs: 1, step, slot, height, key: key.clone() };
            self.cse.insert(key, nid);
            self.live_nodes += 1;
            rows.push(row);
            node_ids.push(nid);
        }

        self.feat_scratch = feat;
        self.child_scratch = child_rows;
        self.logical_nodes += n;
        self.schedule_dirty = true;
        let id = self.next_id;
        self.next_id += 1;
        self.plans.insert(id, Resident { lowering, kinds, node_ids, rows });
        PlanId(id)
    }

    /// Retires a resident plan: every position drops one reference on its
    /// shared subtree, and subtrees reaching zero are released — their
    /// chunk slots compacted by swap-remove and their output rows pushed
    /// onto the free-list for the next admission. Other plans' rows (and
    /// predictions, bit for bit) are unaffected.
    ///
    /// # Panics
    /// Panics if `id` is unknown or already retired.
    pub fn retire(&mut self, id: PlanId) {
        let plan = self
            .plans
            .remove(&id.0)
            .unwrap_or_else(|| panic!("plan {id:?} is not resident (already retired?)"));
        self.logical_nodes -= plan.node_ids.len();
        for &nid in &plan.node_ids {
            let node = &mut self.nodes[nid as usize];
            node.refs -= 1;
            if node.refs == 0 {
                self.release_node(nid);
            }
        }
        self.schedule_dirty = true;
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Whether `id` is currently resident.
    pub fn contains(&self, id: PlanId) -> bool {
        self.plans.contains_key(&id.0)
    }

    /// Ids of all resident plans, in admission order.
    pub fn resident(&self) -> Vec<PlanId> {
        self.plans.keys().map(|&k| PlanId(k)).collect()
    }

    /// Aggregate statistics of the resident program (see
    /// [`ProgramStats`]).
    pub fn stats(&self) -> ProgramStats {
        let mut levels = 0;
        let mut cur = None;
        for &(h, _) in self.wavefronts.keys() {
            if cur != Some(h) {
                levels += 1;
                cur = Some(h);
            }
        }
        ProgramStats {
            resident_plans: self.plans.len(),
            logical_nodes: self.logical_nodes,
            shared_rows: self.live_nodes,
            steps: self.steps.len() - self.step_free.len(),
            levels,
            feat_cache_entries: self.feat_cache.len(),
            feat_cache_hits: self.feat_cache.hits(),
            feat_cache_misses: self.feat_cache.misses(),
            cse_hits: self.cse_hits,
            pred_cache_entries: self.pred_cache.len(),
            pred_cache_hits: self.pred_cache.hits(),
            pred_cache_misses: self.pred_cache.misses(),
            pred_cache_evictions: self.pred_cache.evictions(),
            pred_cache_hit_ns: self.pred_cache.hit_ns(),
        }
    }

    /// Decoded root-latency prediction (milliseconds) for one resident
    /// plan, running the whole resident program once on the calling
    /// thread. Clamped onto the structural envelope when the builder was
    /// created with ratio caps (i.e. the model's configured policy).
    pub fn predict_root(&mut self, id: PlanId) -> f64 {
        self.predict_root_threaded(id, 1)
    }

    /// [`ProgramBuilder::predict_root`] on `threads` workers (results are
    /// bit-identical at any thread count).
    pub fn predict_root_threaded(&mut self, id: PlanId, threads: usize) -> f64 {
        self.run(threads);
        let preds = self.decode_plan(id);
        *preds.last().expect("plans are non-empty")
    }

    /// Root predictions for every resident plan, in admission order.
    pub fn predict_roots(&mut self) -> Vec<f64> {
        self.predict_roots_threaded(1)
    }

    /// [`ProgramBuilder::predict_roots`] on `threads` workers.
    pub fn predict_roots_threaded(&mut self, threads: usize) -> Vec<f64> {
        self.run(threads);
        let ids: Vec<u64> = self.plans.keys().copied().collect();
        ids.into_iter()
            .map(|id| *self.decode_plan(PlanId(id)).last().expect("plans are non-empty"))
            .collect()
    }

    /// Per-operator latency predictions (post order, milliseconds) for
    /// one resident plan.
    pub fn predict_all(&mut self, id: PlanId) -> Vec<f64> {
        self.predict_all_threaded(id, 1)
    }

    /// [`ProgramBuilder::predict_all`] on `threads` workers.
    pub fn predict_all_threaded(&mut self, id: PlanId, threads: usize) -> Vec<f64> {
        self.run(threads);
        self.decode_plan(id)
    }

    /// One-shot root prediction of a non-resident plan: featurizes
    /// through the shared feature cache and runs the packed kernels over
    /// the plan's post order directly — no admission, no wavefront
    /// placement, no retire compaction, and (warm) no allocation. This is
    /// the serve fast path behind `admit_predict` with immediate retire.
    ///
    /// # Bitwise equality
    ///
    /// The result equals `admit` → `predict_root` → `retire` bit for bit:
    /// the feature cache is keyed by the lossless [`NodeContentKey`]
    /// (identical feature bits either way), the packed kernels are
    /// row-invariant (a node's 1-row forward here produces the same bits
    /// as its slot in a chunked wavefront gemm, because the input row —
    /// feature prefix ⌢ child output blocks — is identical by induction
    /// over heights), and decode/clamp are the same code. The differential
    /// suite (`tests/serve_scratch.rs`) holds this across kernel tiers.
    ///
    /// # Panics
    /// Panics on a featurizer/model shape mismatch (same contract as
    /// [`ProgramBuilder::admit`]); callers must pre-check arity via
    /// [`ScratchPlan::arity_ok`].
    pub fn predict_oneshot(&mut self, plan: &ScratchPlan) -> OneshotRun {
        let n = plan.len();
        assert!(n > 0, "plans are non-empty");

        // Whole-plan memo probe: an exact repeat of a served plan skips
        // featurize + run entirely. The key lives in reusable scratch,
        // so a warm probe — hit or miss — never allocates.
        if self.pred_cache_on {
            let tc = std::time::Instant::now();
            Self::scratch_key(&mut self.key_scratch, self.caps.is_some(), plan);
            if let Some(latency_ms) = self.pred_cache.lookup(&self.key_scratch) {
                self.pred_cache.hit_ns += tc.elapsed().as_nanos() as u64;
                return OneshotRun { latency_ms, featurize_ns: 0, run_ns: 0, cache_hit: true };
            }
        }
        let mut sc = std::mem::take(&mut self.oneshot);

        let t0 = std::time::Instant::now();
        sc.feats.clear();
        sc.spans.clear();
        for (k, node) in plan.nodes().iter().enumerate() {
            let kind = plan.kinds()[k];
            assert_eq!(
                self.featurizer.feature_size(kind) + kind.arity() * self.out_w,
                self.units.unit(kind).in_dim(),
                "feature/model shape mismatch for {kind:?}"
            );
            let content = plan.contents[k];
            self.feat_cache.features_into(
                self.featurizer,
                self.whitener,
                node,
                content,
                &mut sc.feat,
            );
            let off = sc.feats.len() as u32;
            sc.feats.extend_from_slice(&sc.feat);
            sc.spans.push((off, sc.feat.len() as u32));
        }
        let featurize_ns = t0.elapsed().as_nanos() as u64;

        let t1 = std::time::Instant::now();
        sc.outputs.resize_for_overwrite(n, self.out_w);
        for k in 0..n {
            let kind = plan.kinds()[k];
            let (off, len) = sc.spans[k];
            let (off, fw) = (off as usize, len as usize);
            let kids = plan.lowering().children_of(k);
            sc.input.resize_for_overwrite(1, fw + kids.len() * self.out_w);
            let row = sc.input.row_mut(0);
            row[..fw].copy_from_slice(&sc.feats[off..off + fw]);
            for (j, &c) in kids.iter().enumerate() {
                let dst = fw + j * self.out_w;
                row[dst..dst + self.out_w].copy_from_slice(sc.outputs.row(c));
            }
            let out = self.packed.unit(kind).forward_pooled(&sc.input, &mut self.pool);
            sc.outputs.row_mut(k).copy_from_slice(out.row(0));
            self.pool.give(out);
        }
        sc.preds.clear();
        sc.preds.extend((0..n).map(|k| self.codec.decode(sc.outputs.get(k, 0))));
        if let Some(caps) = self.caps {
            clamp_plan_envelope(&mut sc.preds, plan.lowering(), plan.kinds(), caps);
        }
        let latency_ms = *sc.preds.last().expect("plans are non-empty");
        let run_ns = t1.elapsed().as_nanos() as u64;

        self.oneshot = sc;
        if self.pred_cache_on {
            // `key_scratch` still holds this plan's key from the missed
            // probe above — nothing between there and here touches it.
            self.pred_cache.insert(&self.key_scratch, latency_ms);
        }
        OneshotRun { latency_ms, featurize_ns, run_ns, cache_hit: false }
    }

    /// Enables or disables the whole-plan prediction memo (on by
    /// default). Disabling stops probes and inserts without clearing the
    /// memo, so re-enabling resumes with the entries already learned.
    pub fn set_prediction_cache(&mut self, enabled: bool) {
        self.pred_cache_on = enabled;
    }

    /// Caps the prediction memo's entry count (generational reset on
    /// overflow; see [`PredictionCache`]).
    pub fn set_prediction_cache_capacity(&mut self, max_entries: usize) {
        self.pred_cache.set_max_entries(max_entries);
    }

    /// Assembles the lossless whole-plan key of a [`ScratchPlan`] into
    /// `key`: `[clamp mode, node count, (content words ⌢ child count ⌢
    /// child positions) per post-order node]`. The encoding parses back
    /// unambiguously left to right, so equal keys mean equal plans (and
    /// equal clamp policy) — never merely equal hashes.
    fn scratch_key(key: &mut Vec<u64>, clamp: bool, plan: &ScratchPlan) {
        key.clear();
        key.push(clamp as u64);
        key.push(plan.len() as u64);
        for k in 0..plan.len() {
            key.extend_from_slice(plan.contents[k].words());
            let kids = plan.lowering.children_of(k);
            key.push(kids.len() as u64);
            key.extend(kids.iter().map(|&c| c as u64));
        }
    }

    /// [`ProgramBuilder::scratch_key`] for an ordinary plan tree — the
    /// resident/micro-batch surfaces hold trees, not scratch CSR. The two
    /// encoders agree word for word on the same plan
    /// (`whole_plan_key_agrees_across_encodings` pins it), so a memo
    /// warmed by one surface serves the others.
    fn tree_key(&mut self, root: &PlanNode) {
        fn rec(
            node: &PlanNode,
            key: &mut Vec<u64>,
            kid_stack: &mut Vec<u64>,
            next: &mut u64,
        ) -> u64 {
            let mark = kid_stack.len();
            for c in &node.children {
                let pos = rec(c, key, kid_stack, next);
                kid_stack.push(pos);
            }
            key.extend_from_slice(NodeContentKey::of(node).words());
            key.push((kid_stack.len() - mark) as u64);
            key.extend_from_slice(&kid_stack[mark..]);
            kid_stack.truncate(mark);
            let pos = *next;
            *next += 1;
            pos
        }
        self.key_scratch.clear();
        self.key_scratch.push(self.caps.is_some() as u64);
        self.key_scratch.push(0); // node count, patched below
        let mut next = 0u64;
        rec(root, &mut self.key_scratch, &mut Vec::new(), &mut next);
        self.key_scratch[1] = next;
    }

    /// Memo probe for a tree-shaped predict request (the micro-batch
    /// surface). Counts a hit or miss; `None` without counting when the
    /// memo is disabled.
    fn cache_probe_tree(&mut self, root: &PlanNode) -> Option<f64> {
        if !self.pred_cache_on {
            return None;
        }
        let tc = std::time::Instant::now();
        self.tree_key(root);
        let hit = self.pred_cache.lookup(&self.key_scratch);
        if hit.is_some() {
            self.pred_cache.hit_ns += tc.elapsed().as_nanos() as u64;
        }
        hit
    }

    /// Memoizes a freshly-computed tree prediction (no-op when the memo
    /// is disabled). Re-assembles the key: between a batch's probes and
    /// its inserts, other members' probes clobber `key_scratch`.
    fn cache_insert_tree(&mut self, root: &PlanNode, latency_ms: f64) {
        if !self.pred_cache_on {
            return;
        }
        self.tree_key(root);
        self.pred_cache.insert(&self.key_scratch, latency_ms);
    }

    /// Executes the resident program (rebuilding the level schedule if
    /// admissions/retirements dirtied it), leaving every live output row
    /// fresh for decoding.
    fn run(&mut self, threads: usize) {
        self.ensure_schedule();
        run_schedule(
            &mut self.steps,
            &self.levels,
            &self.packed,
            &mut self.outputs,
            &mut self.pool,
            Executor::global(),
            self.out_w,
            threads,
        );
    }

    /// Decodes (and, under caps, envelope-clamps) one resident plan's
    /// per-position predictions from the freshly-run output buffer.
    fn decode_plan(&self, id: PlanId) -> Vec<f64> {
        let plan = self
            .plans
            .get(&id.0)
            .unwrap_or_else(|| panic!("plan {id:?} is not resident (already retired?)"));
        let mut preds: Vec<f64> =
            plan.rows.iter().map(|&r| self.codec.decode(self.outputs.get(r, 0))).collect();
        if let Some(caps) = self.caps {
            clamp_plan_envelope(&mut preds, &plan.lowering, &plan.kinds, caps);
        }
        preds
    }

    /// Rebuilds the cached level schedule from the wavefront map (heights
    /// ascending, families in stable order, chunks in insertion order).
    fn ensure_schedule(&mut self) {
        if !self.schedule_dirty {
            return;
        }
        self.levels.clear();
        let mut cur = None;
        for (&(h, _), ids) in &self.wavefronts {
            if cur != Some(h) {
                self.levels.push(Vec::new());
                cur = Some(h);
            }
            self.levels.last_mut().expect("level opened above").extend_from_slice(ids);
        }
        self.schedule_dirty = false;
    }

    /// Takes a free output row, growing the buffer only when the
    /// free-list is dry.
    fn alloc_row(&mut self) -> usize {
        match self.row_free.pop() {
            Some(r) => r,
            None => {
                let r = self.outputs.rows();
                self.outputs.resize_for_overwrite(r + 1, self.out_w);
                r
            }
        }
    }

    /// Takes a free shared-node slot (contents are overwritten by the
    /// caller).
    fn alloc_node(&mut self) -> u32 {
        match self.node_free.pop() {
            Some(n) => n,
            None => {
                self.nodes.push(SharedNode::default());
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Appends one node into its `(height, family)` wavefront: the first
    /// open chunk takes it; a fresh chunk (possibly recycled from the
    /// step free-list) is opened only when all are at the cache-sized
    /// member limit. Returns `(step id, slot)`.
    fn place(
        &mut self,
        height: u32,
        kind: OpKind,
        feat: &[f32],
        child_rows: &[usize],
        nid: u32,
        row: usize,
    ) -> (u32, u32) {
        let arity = kind.arity();
        let in_dim = feat.len() + arity * self.out_w;
        let wf = self.wavefronts.entry((height, kind.index() as u8)).or_default();
        let open =
            wf.iter().copied().find(|&s| self.steps[s as usize].rows.len() < STEP_CHUNK_ROWS);
        let sid = match open {
            Some(s) => s,
            None => {
                let s = match self.step_free.pop() {
                    Some(s) => {
                        let step = &mut self.steps[s as usize];
                        step.kind = kind;
                        step.arity = arity;
                        step.feat_width = feat.len();
                        step.rows.clear();
                        step.child_rows.clear();
                        // The chunk may be recycled across families with a
                        // larger shape (e.g. Scan -> Join): re-reserve to
                        // full chunk capacity now so the per-admission hot
                        // path below never reallocates.
                        step.child_rows.reserve(STEP_CHUNK_ROWS * arity);
                        step.input.resize_for_overwrite(0, in_dim);
                        step.input.reserve_row_capacity(STEP_CHUNK_ROWS);
                        self.step_nodes[s as usize].clear();
                        s
                    }
                    None => {
                        self.steps.push(Step {
                            kind,
                            rows: Vec::with_capacity(STEP_CHUNK_ROWS),
                            child_rows: Vec::with_capacity(STEP_CHUNK_ROWS * arity),
                            arity,
                            feat_width: feat.len(),
                            input: Matrix::with_row_capacity(STEP_CHUNK_ROWS, in_dim),
                        });
                        self.step_nodes.push(Vec::with_capacity(STEP_CHUNK_ROWS));
                        (self.steps.len() - 1) as u32
                    }
                };
                wf.push(s);
                s
            }
        };
        let step = &mut self.steps[sid as usize];
        debug_assert_eq!(step.feat_width, feat.len(), "inconsistent feature size for {kind:?}");
        let slot = step.input.push_zero_row();
        step.input.row_mut(slot)[..feat.len()].copy_from_slice(feat);
        step.rows.push(row);
        step.child_rows.extend_from_slice(child_rows);
        self.step_nodes[sid as usize].push(nid);
        (sid, slot as u32)
    }

    /// Releases a zero-reference shared node: removes its CSE entry,
    /// compacts its chunk (swap-remove, fixing the moved member's
    /// back-pointer), drops the chunk entirely when it empties, and
    /// recycles the output row.
    fn release_node(&mut self, nid: u32) {
        let (key, sid, slot, height, row) = {
            let node = &self.nodes[nid as usize];
            (node.key.clone(), node.step as usize, node.slot as usize, node.height, node.row)
        };
        let removed = self.cse.remove(&key);
        debug_assert_eq!(removed, Some(nid), "CSE map out of sync with node slab");

        let step = &mut self.steps[sid];
        let last = step.rows.len() - 1;
        step.rows.swap_remove(slot);
        step.input.swap_remove_row(slot);
        if step.arity > 0 {
            let a = step.arity;
            for j in 0..a {
                step.child_rows[slot * a + j] = step.child_rows[last * a + j];
            }
            step.child_rows.truncate(last * a);
        }
        let members = &mut self.step_nodes[sid];
        members.swap_remove(slot);
        if slot < members.len() {
            let moved = members[slot] as usize;
            self.nodes[moved].slot = slot as u32;
        }
        if step.rows.is_empty() {
            let kind_idx = step.kind.index() as u8;
            let wf = self.wavefronts.get_mut(&(height, kind_idx)).expect("wavefront exists");
            let pos = wf.iter().position(|&s| s == sid as u32).expect("chunk in wavefront");
            wf.swap_remove(pos);
            if wf.is_empty() {
                self.wavefronts.remove(&(height, kind_idx));
            }
            self.step_free.push(sid as u32);
        }
        self.row_free.push(row);
        self.node_free.push(nid);
        self.live_nodes -= 1;
    }
}

/// Deterministic shard-routing hash of a whole plan: FNV-1a folded over
/// every node's lossless [`NodeContentKey`] words plus the child hashes,
/// so structurally identical plans always land on the same shard (which
/// is what lets the per-shard CSE maps and feature caches keep their hit
/// rates under sharding) and the routing is stable across platforms and
/// runs — no pointer or insertion-order dependence.
pub fn plan_shard_hash(node: &PlanNode) -> u64 {
    let mut h = Fnv1a::new();
    for &w in NodeContentKey::of(node).words() {
        h.mix(w);
    }
    for child in &node.children {
        h.mix(plan_shard_hash(child));
    }
    h.finish()
}

/// A plan decoded straight into lowering-ready form, bypassing the
/// `PlanNode` tree: post-order node records (children lists live in the
/// CSR [`Lowering`], so each stored node's own `children` vec stays
/// empty — every consumer of a node's content is node-local, see
/// [`NodeContentKey`]), the per-position [`OpKind`]s, and a bottom-up
/// replica of [`plan_shard_hash`] per position.
///
/// This is the reusable target of the serve fast path's scratch decoder
/// (`crate::serve::scratch`): [`ScratchPlan::clear`] keeps every
/// allocation, so a warm instance rebuilds from wire bytes without
/// touching the allocator. It is also valid mid-construction — a decoder
/// hitting a duplicate JSON key can [`ScratchPlan::truncate`] back to a
/// mark and re-parse (last-wins semantics) because post-order suffixes
/// are self-contained.
#[derive(Default)]
pub struct ScratchPlan {
    nodes: Vec<PlanNode>,
    kinds: Vec<OpKind>,
    lowering: Lowering,
    hashes: Vec<u64>,
    /// Per-position content keys, captured during the same single-pass
    /// scan that computes `hashes` — the whole-plan memo key and the
    /// featurization pass both read these without re-deriving them.
    contents: Vec<NodeContentKey>,
}

impl ScratchPlan {
    /// An empty plan (no capacity reserved yet).
    pub fn new() -> ScratchPlan {
        ScratchPlan::default()
    }

    /// Resets to empty, keeping all capacity. Must be called before each
    /// rebuild; [`ScratchPlan::seal`] finishes one.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.kinds.clear();
        self.lowering.clear();
        self.hashes.clear();
        self.contents.clear();
    }

    /// Appends one post-order node whose children are the already-pushed
    /// positions `kids` (in order), returning its position. `node.children`
    /// must be empty — the child structure lives only in the CSR.
    pub fn push_node(&mut self, node: PlanNode, kids: &[usize]) -> usize {
        debug_assert!(node.children.is_empty(), "scratch nodes carry no child vecs");
        let content = NodeContentKey::of(&node);
        let mut h = Fnv1a::new();
        for &w in content.words() {
            h.mix(w);
        }
        for &c in kids {
            h.mix(self.hashes[c]);
        }
        self.hashes.push(h.finish());
        self.contents.push(content);
        self.kinds.push(node.op.kind());
        self.nodes.push(node);
        self.lowering.push_node(kids)
    }

    /// Discards every position from `n` on (a decoder backing out of a
    /// re-parsed or semantically-bad subtree range).
    pub fn truncate(&mut self, n: usize) {
        self.nodes.truncate(n);
        self.kinds.truncate(n);
        self.hashes.truncate(n);
        self.contents.truncate(n);
        self.lowering.truncate_nodes(n);
    }

    /// Finishes construction (writes the CSR sentinel). Call exactly once
    /// per rebuild, after the last [`ScratchPlan::push_node`].
    pub fn seal(&mut self) {
        self.lowering.seal();
    }

    /// Rebuilds from an ordinary plan tree (post-order traversal). The
    /// serve fast path decodes straight from wire bytes instead; this is
    /// the reference constructor the differential tests compare against.
    pub fn rebuild_from_tree(&mut self, root: &PlanNode) {
        fn rec(sp: &mut ScratchPlan, node: &PlanNode, kid_stack: &mut Vec<usize>) -> usize {
            let mark = kid_stack.len();
            for c in &node.children {
                let pos = rec(sp, c, kid_stack);
                kid_stack.push(pos);
            }
            let bare = PlanNode {
                op: node.op.clone(),
                est: node.est,
                actual: node.actual,
                learned_rows: node.learned_rows,
                concurrency: node.concurrency,
                children: Vec::new(),
            };
            let pos = sp.push_node(bare, &kid_stack[mark..]);
            kid_stack.truncate(mark);
            pos
        }
        self.clear();
        rec(self, root, &mut Vec::new());
        self.seal();
    }

    /// Nodes pushed so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are resident.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True when every position's child count matches its operator
    /// family's arity (the check `ProgramBuilder::admit` enforces by
    /// panic; the fast path rejects before running instead).
    pub fn arity_ok(&self) -> bool {
        (0..self.len())
            .all(|k| self.lowering.children_of(k).len() == self.kinds[k].arity())
    }

    /// The root's [`plan_shard_hash`] replica (the last post-order
    /// position). Zero on an empty plan.
    pub fn shard_hash(&self) -> u64 {
        self.hashes.last().copied().unwrap_or(0)
    }

    /// Post-order node records (children vecs intentionally empty).
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// Per-position operator families.
    pub fn kinds(&self) -> &[OpKind] {
        &self.kinds
    }

    /// The CSR child structure.
    pub fn lowering(&self) -> &Lowering {
        &self.lowering
    }
}

/// Timing breakdown of one [`ProgramBuilder::predict_oneshot`] call —
/// the serve fast path folds these into its per-phase counters.
#[derive(Debug, Clone, Copy)]
pub struct OneshotRun {
    /// Decoded (and, under caps, envelope-clamped) root-latency
    /// prediction in milliseconds.
    pub latency_ms: f64,
    /// Wall time of the featurization pass (feature-cache lookups).
    /// Zero on a memo hit (the pass is skipped).
    pub featurize_ns: u64,
    /// Wall time of the forward + decode + clamp pass. Zero on a memo
    /// hit.
    pub run_ns: u64,
    /// True when the prediction was served from the whole-plan memo
    /// ([`PredictionCache`]) instead of running the kernels. Bitwise
    /// equality holds either way.
    pub cache_hit: bool,
}

/// Reusable buffers of the one-shot predict path; lives on the builder so
/// steady-state calls never allocate.
struct OneshotScratch {
    /// Flat feature rows, `spans[k]` delimiting node `k`'s row.
    feats: Vec<f32>,
    spans: Vec<(u32, u32)>,
    /// Single-row output of `FeatureCache::features_into`.
    feat: Vec<f32>,
    /// `n × out_w` per-node unit outputs (post-order).
    outputs: Matrix,
    /// One-row gemm input `(feat prefix ⌢ child₁ ⌢ … ⌢ childₖ)`.
    input: Matrix,
    preds: Vec<f64>,
}

impl Default for OneshotScratch {
    fn default() -> OneshotScratch {
        OneshotScratch {
            feats: Vec::new(),
            spans: Vec::new(),
            feat: Vec::new(),
            outputs: Matrix::zeros(0, 0),
            input: Matrix::zeros(0, 0),
            preds: Vec::new(),
        }
    }
}

/// Shard-per-core resident serving: `S` independent [`ProgramBuilder`]
/// shards behind one front door. [`ShardedStream::admit`] routes each
/// plan to a shard by [content hash](NodeContentKey) — admissions to
/// different shards touch disjoint state, so a batch of arrivals admits
/// in parallel on the resident [`Executor`] with no contention
/// ([`ShardedStream::admit_batch`]) — and coalesced prediction runs the
/// non-empty shards concurrently, one resident worker per shard
/// ([`ShardedStream::predict_roots_threaded`]).
///
/// # Determinism
///
/// Per-plan predictions are **bit-identical** to admitting the same plans
/// into a single [`ProgramBuilder`] (and to a fresh
/// [`crate::infer::PlanProgram::compile`]) at every thread and shard
/// count. Each shard is a complete, self-contained wavefront program, and
/// its schedule executes *sequentially* on whichever worker it is dealt
/// to — parallelism is across shards, never within one — so the per-shard
/// bits are the single-threaded bits by construction, and those equal the
/// single-builder bits by the row-invariance + lossless-cache argument in
/// the [module docs](self). `tests/executor_differential.rs` holds random
/// admit/retire/predict interleavings across shards to exact equality
/// against a single builder at 1/2/4/8 threads.
///
/// Obtain one from [`crate::QppNet::serve_sharded`]; the stream carries
/// the model's fingerprint so a multi-model registry
/// ([`crate::Tenants`]) can key resident streams by fitted identity.
pub struct ShardedStream<'m> {
    shards: Vec<ProgramBuilder<'m>>,
    /// Outer id → (shard index, inner per-shard id); BTreeMap so
    /// admission order is iteration order.
    routes: BTreeMap<u64, (usize, PlanId)>,
    next_id: u64,
    fingerprint: u64,
}

impl<'m> ShardedStream<'m> {
    /// Creates an empty sharded stream of `shards` independent resident
    /// programs over one fitted model's parts (`fingerprint` stamps the
    /// fitted identity — see [`crate::Tenants`]). Most callers want
    /// [`crate::QppNet::serve_sharded`], which wires everything from the
    /// fitted model. A `shards` of 0 is promoted to 1.
    pub fn new(
        featurizer: &'m Featurizer,
        whitener: &'m Whitener,
        units: &'m UnitSet,
        codec: &'m TargetCodec,
        caps: Option<&'m RatioCaps>,
        shards: usize,
        fingerprint: u64,
    ) -> ShardedStream<'m> {
        let shards = shards.max(1);
        ShardedStream {
            shards: (0..shards)
                .map(|_| ProgramBuilder::new(featurizer, whitener, units, codec, caps))
                .collect(),
            routes: BTreeMap::new(),
            next_id: 0,
            fingerprint,
        }
    }

    /// Number of shards (fixed at construction).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Fingerprint of the fitted model this stream serves (the
    /// multi-model tenancy key — see [`crate::Tenants`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Admits one plan, routed to its content-hash shard. Same atomicity
    /// contract as [`ProgramBuilder::admit`]: a malformed plan panics
    /// before any shard state is touched.
    pub fn admit(&mut self, root: &PlanNode) -> PlanId {
        let shard = (plan_shard_hash(root) % self.shards.len() as u64) as usize;
        let inner = self.shards[shard].admit(root);
        let id = self.next_id;
        self.next_id += 1;
        self.routes.insert(id, (shard, inner));
        PlanId(id)
    }

    /// Admits a batch of plans, with admissions to *different* shards
    /// proceeding concurrently on `threads` resident workers. Returned
    /// ids are in argument order, and all bookkeeping (ids, routing) is
    /// identical to calling [`ShardedStream::admit`] in a loop — only the
    /// wall-clock differs.
    ///
    /// # Panics
    /// Panics if any plan is malformed (propagated off the worker that
    /// hit it). Plans of the batch admitted before the panic stay
    /// resident but unreachable — callers treating admission panics as
    /// recoverable should admit one at a time.
    pub fn admit_batch(&mut self, roots: &[&PlanNode], threads: usize) -> Vec<PlanId> {
        // Route up front (cheap, pure), so the parallel section below
        // works on a fixed partition of disjoint shards.
        let routed: Vec<usize> = roots
            .iter()
            .map(|r| (plan_shard_hash(r) % self.shards.len() as u64) as usize)
            .collect();
        let threads = threads.clamp(1, self.shards.len());
        let mut inner: Vec<Option<PlanId>> = vec![None; roots.len()];
        if threads <= 1 {
            for (k, (&shard, root)) in routed.iter().zip(roots).enumerate() {
                inner[k] = Some(self.shards[shard].admit(root));
            }
        } else {
            let shards_addr = self.shards.as_mut_ptr() as usize;
            let inner_addr = inner.as_mut_ptr() as usize;
            let routed = &routed;
            Executor::global().run(threads, &move |worker, _pool| {
                // Worker `w` owns shards w, w+threads, … — every plan of
                // a given shard is admitted by exactly one worker, in
                // argument order (preserving per-shard admission order).
                for (k, &shard) in routed.iter().enumerate() {
                    if shard % threads != worker {
                        continue;
                    }
                    // SAFETY: shard indices are dealt disjointly across
                    // workers (mod `threads`), and result slot `k`
                    // belongs to exactly one (plan, shard) pair, so both
                    // `&mut` borrows are unaliased for the run's
                    // duration. `run` blocks until all workers finish.
                    unsafe {
                        let builder = &mut *(shards_addr as *mut ProgramBuilder<'m>).add(shard);
                        *(inner_addr as *mut Option<PlanId>).add(k) = Some(builder.admit(roots[k]));
                    }
                }
            });
        }
        let mut ids = Vec::with_capacity(roots.len());
        for (k, &shard) in routed.iter().enumerate() {
            let id = self.next_id;
            self.next_id += 1;
            self.routes.insert(id, (shard, inner[k].take().expect("admitted above")));
            ids.push(PlanId(id));
        }
        ids
    }

    /// Retires a resident plan from its shard (see
    /// [`ProgramBuilder::retire`]).
    ///
    /// # Panics
    /// Panics if `id` is unknown or already retired.
    pub fn retire(&mut self, id: PlanId) {
        let (shard, inner) = self
            .routes
            .remove(&id.0)
            .unwrap_or_else(|| panic!("plan {id:?} is not resident (already retired?)"));
        self.shards[shard].retire(inner);
    }

    /// Resident plans across all shards.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no plans are resident on any shard.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Whether `id` is currently resident.
    pub fn contains(&self, id: PlanId) -> bool {
        self.routes.contains_key(&id.0)
    }

    /// Ids of all resident plans, in admission order.
    pub fn resident(&self) -> Vec<PlanId> {
        self.routes.keys().map(|&k| PlanId(k)).collect()
    }

    /// Root-latency prediction for one resident plan; only its owning
    /// shard runs (on `threads` workers *within* the shard — identical
    /// bits at any count).
    pub fn predict_root_threaded(&mut self, id: PlanId, threads: usize) -> f64 {
        let &(shard, inner) = self.route(id);
        self.shards[shard].predict_root_threaded(inner, threads)
    }

    /// [`ShardedStream::predict_root_threaded`] on the calling thread.
    pub fn predict_root(&mut self, id: PlanId) -> f64 {
        self.predict_root_threaded(id, 1)
    }

    /// One-shot root prediction of a non-resident plan (see
    /// [`ProgramBuilder::predict_oneshot`]), routed to the same
    /// content-hash shard [`ShardedStream::admit`] would pick — the
    /// [`ScratchPlan`] carries a bottom-up replica of
    /// [`plan_shard_hash`] — so it warms exactly the feature cache that
    /// resident admissions of the same templates would hit.
    pub fn predict_oneshot(&mut self, plan: &ScratchPlan) -> OneshotRun {
        let shard = (plan.shard_hash() % self.shards.len() as u64) as usize;
        self.shards[shard].predict_oneshot(plan)
    }

    /// Enables or disables every shard's whole-plan prediction memo (see
    /// [`ProgramBuilder::set_prediction_cache`]).
    pub fn set_prediction_cache(&mut self, enabled: bool) {
        for s in &mut self.shards {
            s.set_prediction_cache(enabled);
        }
    }

    /// Caps every shard's prediction-memo entry count (see
    /// [`PredictionCache`]).
    pub fn set_prediction_cache_capacity(&mut self, max_entries: usize) {
        for s in &mut self.shards {
            s.set_prediction_cache_capacity(max_entries);
        }
    }

    /// Memo probe for a tree-shaped predict request, routed to the same
    /// content-hash shard [`ShardedStream::admit`] picks — so one
    /// coherent per-shard memo is warmed by every surface.
    fn cache_probe(&mut self, root: &PlanNode) -> Option<f64> {
        let shard = (plan_shard_hash(root) % self.shards.len() as u64) as usize;
        self.shards[shard].cache_probe_tree(root)
    }

    /// Memoizes a freshly-computed tree prediction on its content-hash
    /// shard.
    fn cache_insert(&mut self, root: &PlanNode, latency_ms: f64) {
        let shard = (plan_shard_hash(root) % self.shards.len() as u64) as usize;
        self.shards[shard].cache_insert_tree(root, latency_ms);
    }

    /// Per-operator predictions (post order, milliseconds) for one
    /// resident plan, from its owning shard.
    pub fn predict_all(&mut self, id: PlanId) -> Vec<f64> {
        let &(shard, inner) = self.route(id);
        self.shards[shard].predict_all(inner)
    }

    /// Root predictions for every resident plan (admission order), with
    /// the non-empty shards running **concurrently** — one resident
    /// worker per shard, each shard's schedule sequential, so the bits
    /// match single-builder execution exactly (see the type docs).
    pub fn predict_roots_threaded(&mut self, threads: usize) -> Vec<f64> {
        let todo: Vec<usize> =
            (0..self.shards.len()).filter(|&s| !self.shards[s].is_empty()).collect();
        self.run_shards(&todo, threads);
        self.routes
            .values()
            .map(|&(shard, inner)| {
                *self.shards[shard].decode_plan(inner).last().expect("plans are non-empty")
            })
            .collect()
    }

    /// [`ShardedStream::predict_roots_threaded`] on the calling thread.
    pub fn predict_roots(&mut self) -> Vec<f64> {
        self.predict_roots_threaded(1)
    }

    /// Root predictions for a specific id set (argument order), running
    /// only the shards those ids live on — the decode half of a
    /// micro-batched request (see [`MicroBatcher`]).
    pub fn predict_batch_threaded(&mut self, ids: &[PlanId], threads: usize) -> Vec<f64> {
        let mut todo: Vec<usize> = ids.iter().map(|&id| self.route(id).0).collect();
        todo.sort_unstable();
        todo.dedup();
        self.run_shards(&todo, threads);
        ids.iter()
            .map(|&id| {
                let &(shard, inner) = self.route(id);
                *self.shards[shard].decode_plan(inner).last().expect("plans are non-empty")
            })
            .collect()
    }

    /// Per-shard statistics, in shard order (the CLI prints one line per
    /// shard in `--stream` mode).
    pub fn shard_stats(&self) -> Vec<ProgramStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Aggregate statistics across all shards (counts sum; note `steps`
    /// and `levels` are per-shard program properties, so their sums
    /// describe total work per coalesced run, not one schedule).
    pub fn stats(&self) -> ProgramStats {
        let mut agg = ProgramStats {
            resident_plans: 0,
            logical_nodes: 0,
            shared_rows: 0,
            steps: 0,
            levels: 0,
            feat_cache_entries: 0,
            feat_cache_hits: 0,
            feat_cache_misses: 0,
            cse_hits: 0,
            pred_cache_entries: 0,
            pred_cache_hits: 0,
            pred_cache_misses: 0,
            pred_cache_evictions: 0,
            pred_cache_hit_ns: 0,
        };
        for s in &self.shards {
            let st = s.stats();
            agg.resident_plans += st.resident_plans;
            agg.logical_nodes += st.logical_nodes;
            agg.shared_rows += st.shared_rows;
            agg.steps += st.steps;
            agg.levels += st.levels;
            agg.feat_cache_entries += st.feat_cache_entries;
            agg.feat_cache_hits += st.feat_cache_hits;
            agg.feat_cache_misses += st.feat_cache_misses;
            agg.cse_hits += st.cse_hits;
            agg.pred_cache_entries += st.pred_cache_entries;
            agg.pred_cache_hits += st.pred_cache_hits;
            agg.pred_cache_misses += st.pred_cache_misses;
            agg.pred_cache_evictions += st.pred_cache_evictions;
            agg.pred_cache_hit_ns += st.pred_cache_hit_ns;
        }
        agg
    }

    fn route(&self, id: PlanId) -> &(usize, PlanId) {
        self.routes
            .get(&id.0)
            .unwrap_or_else(|| panic!("plan {id:?} is not resident (already retired?)"))
    }

    /// Runs the shards in `todo` (distinct indices), concurrently when
    /// `threads > 1`: worker `w` executes shards `todo[w]`,
    /// `todo[w + threads]`, … — each shard sequentially on that worker's
    /// thread, so per-shard output bits are thread-count-invariant.
    fn run_shards(&mut self, todo: &[usize], threads: usize) {
        if todo.is_empty() {
            return;
        }
        let threads = threads.clamp(1, todo.len());
        if threads <= 1 {
            for &s in todo {
                self.shards[s].run(1);
            }
            return;
        }
        let shards_addr = self.shards.as_mut_ptr() as usize;
        Executor::global().run(threads, &move |worker, _pool| {
            for &s in todo.iter().skip(worker).step_by(threads) {
                // SAFETY: `todo` holds distinct indices and the
                // round-robin deal hands each to exactly one worker, so
                // the `&mut` borrows are disjoint; `run` blocks until
                // every worker finishes before this frame returns.
                let shard = unsafe { &mut *(shards_addr as *mut ProgramBuilder<'m>).add(s) };
                shard.run(1);
            }
        });
    }
}

/// Statistics of a [`MicroBatcher`] front door: how many coalesced runs
/// it issued and how wide they were (the whole point of micro-batching is
/// pushing mean width above 1 so the per-family gemms amortize).
#[derive(Debug, Clone, Copy, Default)]
pub struct MicroBatchStats {
    /// Coalesced flushes issued (each is one admit-batch + one
    /// heterogeneous wavefront run over the touched shards).
    pub batches: u64,
    /// Predict requests absorbed across all flushes.
    pub requests: u64,
    /// Requests answered from the whole-plan memo — admitted like every
    /// other member (residency is unchanged) but excluded from the
    /// wavefront run.
    pub cache_hits: u64,
}

impl MicroBatchStats {
    /// Mean requests coalesced per flush (0 when nothing flushed).
    pub fn mean_width(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

impl std::fmt::Display for MicroBatchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} batches coalesced, {} requests (mean width {:.2})",
            self.batches,
            self.requests,
            self.mean_width()
        )
    }
}

/// Micro-batching front door over a [`ShardedStream`]: concurrent predict
/// requests are [`MicroBatcher::submit`]ted as they arrive, then one
/// [`MicroBatcher::flush`] admits them all (in parallel across shards),
/// executes **one** coalesced heterogeneous wavefront run, and returns
/// every answer. The engine batches by `(height, family)`, so requests
/// that share operator families share gemm calls — cross-request batching
/// is exactly where gemm-per-family pays, and it is accuracy-free: each
/// plan's bits are independent of what else is in the batch (row
/// invariance, see the [module docs](self)).
///
/// Flushed plans are retired immediately (a predict request is one-shot);
/// callers that want plans to stay resident should drive the
/// [`ShardedStream`] directly.
#[derive(Debug, Default)]
pub struct MicroBatcher<'p> {
    pending: Vec<&'p PlanNode>,
    stats: MicroBatchStats,
}

impl<'p> MicroBatcher<'p> {
    /// An empty front door.
    pub fn new() -> MicroBatcher<'p> {
        MicroBatcher::default()
    }

    /// Queues one predict request for the next flush.
    pub fn submit(&mut self, plan: &'p PlanNode) {
        self.pending.push(plan);
    }

    /// Requests queued for the next flush.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Coalesces every queued request into one batched admission + one
    /// wavefront run on `stream`, returning root predictions in submit
    /// order (bit-identical to one-at-a-time serving). The flushed plans
    /// are retired before returning.
    pub fn flush(&mut self, stream: &mut ShardedStream<'_>, threads: usize) -> Vec<f64> {
        let (ids, preds) = self.flush_resident(stream, threads);
        for id in ids {
            stream.retire(id);
        }
        preds
    }

    /// [`MicroBatcher::flush`] for window-managed serving: the flushed
    /// plans **stay resident** and their ids are returned alongside the
    /// predictions, so an admission-control loop can retire them on its
    /// own schedule (e.g. when the query finishes).
    pub fn flush_resident(
        &mut self,
        stream: &mut ShardedStream<'_>,
        threads: usize,
    ) -> (Vec<PlanId>, Vec<f64>) {
        if self.pending.is_empty() {
            return (Vec::new(), Vec::new());
        }
        self.stats.batches += 1;
        self.stats.requests += self.pending.len() as u64;
        // Admission is unchanged by the memo — resident bookkeeping (ids,
        // routing, CSE rows) must be identical with the cache on or off.
        // Only the wavefront run shrinks: members whose whole-plan key is
        // memoized take their prediction from the memo and drop out of
        // the coalesced run; the rest run and then seed the memo.
        let ids = stream.admit_batch(&self.pending, threads);
        let mut preds: Vec<Option<f64>> =
            self.pending.iter().map(|p| stream.cache_probe(p)).collect();
        let miss_ids: Vec<PlanId> = ids
            .iter()
            .zip(&preds)
            .filter(|(_, p)| p.is_none())
            .map(|(&id, _)| id)
            .collect();
        self.stats.cache_hits += (ids.len() - miss_ids.len()) as u64;
        if !miss_ids.is_empty() {
            let fresh = stream.predict_batch_threaded(&miss_ids, threads);
            let mut fresh = fresh.into_iter();
            for (k, slot) in preds.iter_mut().enumerate() {
                if slot.is_none() {
                    let v = fresh.next().expect("one prediction per miss");
                    stream.cache_insert(self.pending[k], v);
                    *slot = Some(v);
                }
            }
        }
        self.pending.clear();
        (ids, preds.into_iter().map(|p| p.expect("filled above")).collect())
    }

    /// Coalescing statistics across the batcher's lifetime.
    pub fn stats(&self) -> MicroBatchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{QppConfig, TargetTransform};
    use crate::infer::PlanProgram;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;
    use qpp_plansim::plan::Plan;
    use rand::SeedableRng;

    fn setup(workload: Workload) -> (Dataset, Featurizer, Whitener, UnitSet, TargetCodec) {
        let ds = Dataset::generate(workload, 1.0, 32, 21);
        let fz = Featurizer::new(&ds.catalog);
        let wh = Whitener::fit(&fz, ds.plans.iter());
        let cfg = QppConfig::tiny();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let units = UnitSet::new(&cfg, &fz, &mut rng);
        let codec =
            TargetCodec::fit(TargetTransform::Log1p, ds.plans.iter().map(|p| p.latency_ms()));
        (ds, fz, wh, units, codec)
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn fresh_compile_roots(
        fz: &Featurizer,
        wh: &Whitener,
        units: &UnitSet,
        codec: &TargetCodec,
        plans: &[&Plan],
    ) -> Vec<f64> {
        let roots: Vec<&PlanNode> = plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(fz, wh, units, &roots);
        program.predict_roots(units, codec)
    }

    #[test]
    fn incremental_admission_matches_fresh_compile_bitwise() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        let mut resident: Vec<&Plan> = Vec::new();
        for plan in ds.plans.iter().take(12) {
            builder.admit(&plan.root);
            resident.push(plan);
            let incremental = builder.predict_roots();
            let fresh = fresh_compile_roots(&fz, &wh, &units, &codec, &resident);
            assert_eq!(bits(&incremental), bits(&fresh), "after admitting {}", resident.len());
        }
    }

    #[test]
    fn retirement_leaves_survivors_bit_identical() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcDs);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        let ids: Vec<PlanId> =
            ds.plans.iter().take(10).map(|p| builder.admit(&p.root)).collect();
        // Retire every even admission.
        for id in ids.iter().step_by(2) {
            builder.retire(*id);
        }
        let survivors: Vec<&Plan> = ds.plans.iter().take(10).skip(1).step_by(2).collect();
        let incremental = builder.predict_roots();
        let fresh = fresh_compile_roots(&fz, &wh, &units, &codec, &survivors);
        assert_eq!(bits(&incremental), bits(&fresh));
        assert_eq!(builder.len(), survivors.len());
        // Admitting after churn reuses freed rows and still matches.
        builder.admit(&ds.plans[0].root);
        let mut with_new: Vec<&Plan> = survivors.clone();
        with_new.push(&ds.plans[0]);
        assert_eq!(
            bits(&builder.predict_roots()),
            bits(&fresh_compile_roots(&fz, &wh, &units, &codec, &with_new))
        );
    }

    #[test]
    fn clamped_predictions_match_fresh_compile() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcDs);
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, Some(&caps));
        let plans: Vec<&Plan> = ds.plans.iter().take(8).collect();
        let ids: Vec<PlanId> = plans.iter().map(|p| builder.admit(&p.root)).collect();
        let roots: Vec<&PlanNode> = plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        let fresh = program.predict_roots_clamped(&units, &codec, &caps);
        assert_eq!(bits(&builder.predict_roots()), bits(&fresh));
        // Per-plan predictors agree with the batch view.
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(builder.predict_root(*id).to_bits(), fresh[i].to_bits());
        }
        let all = program.predict_all_clamped(&units, &codec, &caps);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(bits(&builder.predict_all(*id)), bits(&all[i]));
        }
    }

    #[test]
    fn cse_dedups_repeated_subplans() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcDs);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        // A batch containing the same plan four times — the template-heavy
        // stream in miniature. All copies must share one set of rows.
        let plan = ds.plans.iter().max_by_key(|p| p.node_count()).unwrap();
        let ids: Vec<PlanId> = (0..4).map(|_| builder.admit(&plan.root)).collect();
        let stats = builder.stats();
        assert_eq!(stats.resident_plans, 4);
        assert_eq!(stats.logical_nodes, 4 * plan.node_count());
        assert_eq!(stats.shared_rows, plan.node_count(), "duplicates must share all rows");
        assert!(stats.dedup_ratio() > 1.0, "dedup ratio {}", stats.dedup_ratio());
        assert_eq!(stats.cse_hits, 3 * plan.node_count() as u64);
        // Every copy predicts the same value, equal to a fresh single-plan
        // compile (which computes each copy separately).
        let fresh = fresh_compile_roots(&fz, &wh, &units, &codec, &[plan]);
        for id in &ids {
            assert_eq!(builder.predict_root(*id).to_bits(), fresh[0].to_bits());
        }
        // Retiring three copies keeps the shared rows alive for the last.
        for id in &ids[..3] {
            builder.retire(*id);
        }
        assert_eq!(builder.stats().shared_rows, plan.node_count());
        assert_eq!(builder.predict_root(ids[3]).to_bits(), fresh[0].to_bits());
        // Retiring the last releases everything.
        builder.retire(ids[3]);
        let empty = builder.stats();
        assert_eq!((empty.shared_rows, empty.steps, empty.resident_plans), (0, 0, 0));
    }

    #[test]
    fn feature_cache_skips_featurization_on_repeats() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        let plan = &ds.plans[0];
        let a = builder.admit(&plan.root);
        let misses_after_first = builder.stats().feat_cache_misses;
        builder.retire(a);
        // Re-admitting the same plan after full retirement is all cache
        // hits (CSE entries are gone, but feature rows are memoized).
        builder.admit(&plan.root);
        let stats = builder.stats();
        assert_eq!(stats.feat_cache_misses, misses_after_first, "no new featurization");
        assert!(stats.feat_cache_hits >= plan.node_count() as u64);
        assert!(stats.feat_hit_rate() > 0.0);
    }

    #[test]
    fn rows_are_recycled_after_retirement() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        let ids: Vec<PlanId> = ds.plans.iter().take(8).map(|p| builder.admit(&p.root)).collect();
        let high_water = builder.outputs.rows();
        for id in ids {
            builder.retire(id);
        }
        // Admitting the same work again must not grow the output buffer.
        for p in ds.plans.iter().take(8) {
            builder.admit(&p.root);
        }
        assert_eq!(builder.outputs.rows(), high_water, "rows must be recycled");
    }

    #[test]
    fn chunks_split_only_on_overflow() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        for p in &ds.plans {
            builder.admit(&p.root);
        }
        // No two chunks of one wavefront may both be under the limit
        // minus a single admission's worth of slack: specifically, at most
        // one open (non-full) chunk per wavefront.
        for ids in builder.wavefronts.values() {
            let open =
                ids.iter().filter(|&&s| builder.steps[s as usize].rows.len() < STEP_CHUNK_ROWS);
            assert!(open.count() <= 1, "more than one open chunk in a wavefront");
        }
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn retiring_twice_panics() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        let id = builder.admit(&ds.plans[0].root);
        builder.retire(id);
        builder.retire(id);
    }

    #[test]
    #[should_panic(expected = "malformed plan")]
    fn malformed_arity_is_rejected_at_admission() {
        let (_, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        use qpp_plansim::operators::Operator;
        // A Materialize (arity 1) with no children.
        let bad = PlanNode::new(Operator::Materialize, vec![]);
        let _ = builder.admit(&bad);
    }

    #[test]
    fn malformed_admission_is_atomic() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        builder.admit(&ds.plans[0].root);
        let before = builder.predict_roots();
        let before_stats = builder.stats();
        use qpp_plansim::operators::{JoinAlgorithm, JoinType, Operator, ParentRel};
        // The malformed node is the ROOT (last in post order) above a
        // perfectly valid subtree — the worst case for a non-atomic
        // admit, which would have placed every child before panicking.
        let bad = PlanNode::new(
            Operator::Join {
                algo: JoinAlgorithm::Hash,
                jtype: JoinType::Inner,
                parent_rel: ParentRel::None,
            },
            vec![ds.plans[1].root.clone()],
        );
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| builder.admit(&bad)));
        assert!(r.is_err(), "malformed plan must still be rejected");
        let after = builder.stats();
        assert_eq!(after.shared_rows, before_stats.shared_rows, "rejected admit leaked rows");
        assert_eq!(after.steps, before_stats.steps, "rejected admit leaked chunks");
        assert_eq!(builder.len(), 1);
        assert_eq!(bits(&builder.predict_roots()), bits(&before));
    }

    #[test]
    fn empty_builder_predicts_nothing() {
        let (_, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        assert!(builder.is_empty());
        assert!(builder.predict_roots().is_empty());
        assert!(builder.stats().to_string().contains("0 resident plans"));
    }

    #[test]
    fn threaded_predictions_are_bit_identical() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcDs);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        for p in &ds.plans {
            builder.admit(&p.root);
        }
        let base = builder.predict_roots();
        for threads in [2, 4, 8] {
            assert_eq!(bits(&builder.predict_roots_threaded(threads)), bits(&base));
        }
    }

    #[test]
    fn sharded_stream_matches_single_builder_bitwise() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcDs);
        let mut single = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        let mut sharded = ShardedStream::new(&fz, &wh, &units, &codec, None, 3, 0);
        let mut single_ids = Vec::new();
        let mut sharded_ids = Vec::new();
        for p in ds.plans.iter().take(12) {
            single_ids.push(single.admit(&p.root));
            sharded_ids.push(sharded.admit(&p.root));
        }
        assert_eq!(sharded.len(), 12);
        assert_eq!(sharded.num_shards(), 3);
        // Batch views agree at every thread count, and per-plan views
        // agree with the single builder.
        let base = single.predict_roots();
        for threads in [1, 2, 4] {
            assert_eq!(bits(&sharded.predict_roots_threaded(threads)), bits(&base));
        }
        for (s, d) in single_ids.iter().zip(&sharded_ids) {
            assert_eq!(sharded.predict_root(*d).to_bits(), single.predict_root(*s).to_bits());
            assert_eq!(bits(&sharded.predict_all(*d)), bits(&single.predict_all(*s)));
        }
        // Retire half; survivors still agree.
        for (s, d) in single_ids.iter().zip(&sharded_ids).step_by(2) {
            single.retire(*s);
            sharded.retire(*d);
        }
        assert_eq!(bits(&sharded.predict_roots_threaded(4)), bits(&single.predict_roots()));
        assert!(sharded.contains(sharded_ids[1]) && !sharded.contains(sharded_ids[0]));
    }

    #[test]
    fn identical_plans_route_to_one_shard_and_share_rows() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcDs);
        let mut sharded = ShardedStream::new(&fz, &wh, &units, &codec, None, 4, 7);
        assert_eq!(sharded.fingerprint(), 7);
        let plan = ds.plans.iter().max_by_key(|p| p.node_count()).unwrap();
        for _ in 0..4 {
            sharded.admit(&plan.root);
        }
        // Content-hash routing puts structurally identical plans on the
        // same shard, where CSE collapses them to one set of rows.
        let agg = sharded.stats();
        assert_eq!(agg.resident_plans, 4);
        assert_eq!(agg.shared_rows, plan.node_count());
        let busy: Vec<_> =
            sharded.shard_stats().into_iter().filter(|s| s.resident_plans > 0).collect();
        assert_eq!(busy.len(), 1, "identical plans must land on one shard");
        assert_eq!(busy[0].resident_plans, 4);
    }

    #[test]
    fn admit_batch_matches_sequential_admission() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut seq = ShardedStream::new(&fz, &wh, &units, &codec, None, 3, 0);
        let mut par = ShardedStream::new(&fz, &wh, &units, &codec, None, 3, 0);
        let roots: Vec<&PlanNode> = ds.plans.iter().take(10).map(|p| &p.root).collect();
        let seq_ids: Vec<PlanId> = roots.iter().map(|r| seq.admit(r)).collect();
        let par_ids = par.admit_batch(&roots, 4);
        assert_eq!(seq_ids, par_ids, "ids must be identical to the sequential loop");
        assert_eq!(bits(&par.predict_roots_threaded(4)), bits(&seq.predict_roots()));
    }

    #[test]
    fn microbatcher_coalesces_and_matches_oneshot_serving() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcDs);
        let mut stream = ShardedStream::new(&fz, &wh, &units, &codec, None, 3, 0);
        let mut front = MicroBatcher::new();
        assert!(front.flush(&mut stream, 4).is_empty(), "empty flush is a no-op");
        for p in ds.plans.iter().take(8) {
            front.submit(&p.root);
        }
        assert_eq!(front.pending(), 8);
        let batched = front.flush(&mut stream, 4);
        assert_eq!(front.pending(), 0);
        assert!(stream.is_empty(), "one-shot requests retire after the flush");
        // Bit-identical to serving each request alone on a fresh builder.
        for (p, got) in ds.plans.iter().take(8).zip(&batched) {
            let alone = fresh_compile_roots(&fz, &wh, &units, &codec, &[p]);
            assert_eq!(got.to_bits(), alone[0].to_bits());
        }
        let stats = front.stats();
        assert_eq!((stats.batches, stats.requests), (1, 8));
        assert!((stats.mean_width() - 8.0).abs() < 1e-12);
        assert!(stats.to_string().contains("mean width"));
    }

    #[test]
    fn scratch_plan_replicates_lowering_and_shard_hash() {
        let (ds, _, _, _, _) = setup(Workload::TpcDs);
        let mut sp = ScratchPlan::new();
        for p in &ds.plans {
            sp.rebuild_from_tree(&p.root);
            let oracle = lower(&p.root);
            let po = p.root.postorder();
            assert_eq!(sp.len(), oracle.len());
            for (k, node) in po.iter().enumerate() {
                assert_eq!(sp.lowering().children_of(k), oracle.children_of(k));
                assert_eq!(sp.lowering().height_of(k), oracle.height_of(k));
                assert_eq!(
                    NodeContentKey::of(&sp.nodes()[k]),
                    NodeContentKey::of(node),
                    "content key drift at position {k}"
                );
                assert_eq!(sp.kinds()[k], node.op.kind());
            }
            assert_eq!(sp.shard_hash(), plan_shard_hash(&p.root));
            assert!(sp.arity_ok());
        }
    }

    #[test]
    fn scratch_plan_truncate_backs_out_a_suffix() {
        let (ds, _, _, _, _) = setup(Workload::TpcDs);
        let deep = ds.plans.iter().max_by_key(|p| p.node_count()).unwrap();
        let mut sp = ScratchPlan::new();
        // Build the full tree, remember its state, truncate to a prefix,
        // then re-push the suffix: everything must match the clean build.
        sp.rebuild_from_tree(&deep.root);
        let want_hash = sp.shard_hash();
        let want_len = sp.len();
        // Rebuild by hand so we can interrupt: push all, then truncate the
        // root off and re-push it.
        sp.clear();
        let po = deep.root.postorder();
        let lw = lower(&deep.root);
        for (k, node) in po.iter().enumerate() {
            let mut bare = (*node).clone();
            bare.children = Vec::new();
            sp.push_node(bare, lw.children_of(k));
        }
        let root_kids: Vec<usize> = lw.children_of(want_len - 1).to_vec();
        sp.truncate(want_len - 1);
        assert_eq!(sp.len(), want_len - 1);
        let mut bare = po[want_len - 1].clone();
        bare.children = Vec::new();
        sp.push_node(bare, &root_kids);
        sp.seal();
        assert_eq!(sp.len(), want_len);
        assert_eq!(sp.shard_hash(), want_hash);
        for k in 0..want_len {
            assert_eq!(sp.lowering().children_of(k), lw.children_of(k));
        }
    }

    #[test]
    fn oneshot_predict_matches_admit_predict_retire_bitwise() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcDs);
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        for caps in [None, Some(&caps)] {
            let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, caps);
            let mut sp = ScratchPlan::new();
            // Interleave with resident plans so the one-shot path runs
            // against a warm, non-trivial builder.
            for p in ds.plans.iter().take(4) {
                builder.admit(&p.root);
            }
            for p in &ds.plans {
                sp.rebuild_from_tree(&p.root);
                let fast = builder.predict_oneshot(&sp);
                let id = builder.admit(&p.root);
                let slow = builder.predict_root(id);
                builder.retire(id);
                assert_eq!(
                    fast.latency_ms.to_bits(),
                    slow.to_bits(),
                    "one-shot drift (caps={})",
                    builder.caps.is_some()
                );
            }
        }
    }

    #[test]
    fn sharded_oneshot_routes_like_admit_and_matches_bitwise() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut sharded = ShardedStream::new(&fz, &wh, &units, &codec, None, 3, 0);
        let mut sp = ScratchPlan::new();
        for p in &ds.plans {
            sp.rebuild_from_tree(&p.root);
            let fast = sharded.predict_oneshot(&sp);
            let id = sharded.admit(&p.root);
            let slow = sharded.predict_root(id);
            sharded.retire(id);
            assert_eq!(fast.latency_ms.to_bits(), slow.to_bits());
        }
        assert!(sharded.is_empty());
    }

    #[test]
    fn oneshot_predict_is_allocation_free_when_warm() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        let plans: Vec<ScratchPlan> = ds
            .plans
            .iter()
            .map(|p| {
                let mut sp = ScratchPlan::new();
                sp.rebuild_from_tree(&p.root);
                sp
            })
            .collect();
        // Warm every scratch buffer, the feature cache and the pool.
        for sp in &plans {
            builder.predict_oneshot(sp);
        }
        let before = crate::alloc::thread_alloc_count();
        for sp in &plans {
            builder.predict_oneshot(sp);
        }
        assert_eq!(
            crate::alloc::thread_alloc_count() - before,
            0,
            "warm one-shot predict must not allocate"
        );
    }

    #[test]
    fn whole_plan_key_agrees_across_encodings() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcDs);
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        for caps in [None, Some(&caps)] {
            let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, caps);
            let mut sp = ScratchPlan::new();
            for p in &ds.plans {
                sp.rebuild_from_tree(&p.root);
                let mut from_scratch = Vec::new();
                ProgramBuilder::scratch_key(&mut from_scratch, builder.caps.is_some(), &sp);
                builder.tree_key(&p.root);
                assert_eq!(
                    builder.key_scratch,
                    from_scratch,
                    "key encoder drift (caps={})",
                    builder.caps.is_some()
                );
                assert_eq!(from_scratch[0], builder.caps.is_some() as u64);
                assert_eq!(from_scratch[1], sp.len() as u64);
            }
        }
    }

    #[test]
    fn oneshot_memo_hit_matches_fresh_run_bitwise() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut cached = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        let mut uncached = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        uncached.set_prediction_cache(false);
        let mut sp = ScratchPlan::new();
        for p in &ds.plans {
            sp.rebuild_from_tree(&p.root);
            let first = cached.predict_oneshot(&sp);
            let again = cached.predict_oneshot(&sp);
            assert!(again.cache_hit, "an exact repeat must hit the memo");
            assert_eq!((again.featurize_ns, again.run_ns), (0, 0));
            assert_eq!(again.latency_ms.to_bits(), first.latency_ms.to_bits());
            let fresh = uncached.predict_oneshot(&sp);
            assert!(!fresh.cache_hit, "a disabled memo never reports hits");
            assert_eq!(again.latency_ms.to_bits(), fresh.latency_ms.to_bits());
        }
        let st = cached.stats();
        assert!(st.pred_cache_hits >= ds.plans.len() as u64);
        assert!(st.pred_cache_entries > 0);
        assert!(st.pred_hit_rate() > 0.0);
        let off = uncached.stats();
        assert_eq!((off.pred_cache_hits, off.pred_cache_misses, off.pred_cache_entries), (0, 0, 0));
    }

    #[test]
    fn prediction_memo_generational_reset_bounds_entries() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH);
        let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, None);
        builder.set_prediction_cache_capacity(8);
        let mut sp = ScratchPlan::new();
        let mut root = ds.plans[0].root.clone();
        for i in 0..100u32 {
            // A never-repeating plan stream: each arrival's estimate block
            // (part of the content key) is distinct, so nothing ever hits.
            root.est.rows = 1000.0 + f64::from(i);
            sp.rebuild_from_tree(&root);
            builder.predict_oneshot(&sp);
            assert!(
                builder.stats().pred_cache_entries <= 8,
                "memo must never outgrow its cap"
            );
        }
        let st = builder.stats();
        assert!(st.pred_cache_evictions > 0, "the cap must have forced resets");
        assert_eq!((st.pred_cache_hits, st.pred_cache_misses), (0, 100));
    }

    #[test]
    fn microbatcher_memo_hits_drop_out_of_the_run_bitwise() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcDs);
        let mut cached = ShardedStream::new(&fz, &wh, &units, &codec, None, 3, 0);
        let mut uncached = ShardedStream::new(&fz, &wh, &units, &codec, None, 3, 0);
        uncached.set_prediction_cache(false);
        let mut front_c = MicroBatcher::new();
        let mut front_u = MicroBatcher::new();
        for _round in 0..3 {
            for p in ds.plans.iter().take(6) {
                front_c.submit(&p.root);
                front_u.submit(&p.root);
            }
            // A duplicate *within* one batch: both members probe before
            // either inserts, so the first round runs both (and the
            // batch's bookkeeping stays identical either way).
            front_c.submit(&ds.plans[0].root);
            front_u.submit(&ds.plans[0].root);
            let a = front_c.flush(&mut cached, 4);
            let b = front_u.flush(&mut uncached, 4);
            assert_eq!(bits(&a), bits(&b), "memoized flush drifted from uncached");
        }
        assert!(cached.is_empty() && uncached.is_empty());
        assert!(
            front_c.stats().cache_hits >= 14,
            "rounds 2 and 3 must serve every member from the memo (got {})",
            front_c.stats().cache_hits
        );
        assert_eq!(front_u.stats().cache_hits, 0);
        assert_eq!(uncached.stats().pred_cache_misses, 0, "disabled memo never probes");
    }

    #[test]
    fn shard_routing_is_deterministic() {
        let (ds, _, _, _, _) = setup(Workload::TpcH);
        for p in &ds.plans {
            assert_eq!(plan_shard_hash(&p.root), plan_shard_hash(&p.root.clone()));
        }
        // Sanity: the hash actually spreads a workload (not all-one-bucket).
        let shards: std::collections::HashSet<u64> =
            ds.plans.iter().map(|p| plan_shard_hash(&p.root) % 4).collect();
        assert!(shards.len() > 1, "routing must spread distinct plans");
    }
}
