//! The serving engine: compiled, wavefront-batched inference over
//! heterogeneous plan batches.
//!
//! Training-time evaluation ([`crate::tree::TreeBatch`]) can only batch
//! *structurally identical* plans (§5.1.1's equivalence classes), which is
//! the right granularity for unbiased gradients but degenerates on a
//! realistic serving mix: most classes are singletons, so every operator of
//! every plan costs one tiny gemm plus an [`qpp_nn::MlpCache`] allocation
//! it never uses. A [`PlanProgram`] instead *compiles* an arbitrary batch
//! of plans into **wavefronts**: all nodes of all plans are keyed by
//! `(height-from-leaf, OpKind)` and each key becomes one step executing a
//! single gemm per operator family over every plan in the batch,
//! regardless of tree shape. Child outputs
//! are routed between wavefronts with row gather/scatter into preallocated
//! buffers, and layer activations come from a [`qpp_nn::BufferPool`] — the
//! hot path performs no per-node allocation.
//!
//! Scheduling by height from the leaves is sound because a node at height
//! `h` is `1 + max(child heights)`, so every child sits at a strictly
//! smaller height and its output row is written before the parent's
//! wavefront runs. The arithmetic per node is *identical* to the
//! equivalence-class path — same whitened features, same unit weights, same
//! row-major kernels — only the grouping of rows into gemm calls changes,
//! and a row of `X·W` depends on no other row. The differential suite
//! (`tests/infer_differential.rs`) holds the two engines to within `1e-5`
//! relative on every plan, clamped and unclamped.
//!
//! ## Multicore execution
//!
//! Wavefront rows are embarrassingly parallel: the steps of one height
//! level read only rows written at strictly lower heights and write
//! disjoint row ranges of the shared output buffer, so
//! [`PlanProgram::run_parallel`] distributes each level's cache-sized
//! 32-row steps across the **resident executor** ([`qpp_nn::Executor`]) —
//! a process-wide pool of parked worker threads created once and reused
//! across runs. Every resident worker owns its own persistent
//! [`qpp_nn::BufferPool`] and gather scratch, so the hot path stays
//! lock-free and allocation-free in steady state, and a level barrier is
//! the only synchronization. Results are
//! **bit-identical at any thread count** (see `DESIGN.md` §7 for the
//! determinism contract): the partition grain is the compile-time step, so
//! every node is computed by the same kernel on the same input rows no
//! matter which worker runs it. Compile once, then serve:
//!
//! ```
//! use qppnet::{QppConfig, QppNet};
//! use qpp_plansim::prelude::*;
//!
//! let ds = Dataset::generate(Workload::TpcH, 1.0, 24, 3);
//! let mut model = QppNet::new(QppConfig { epochs: 1, ..QppConfig::tiny() }, &ds.catalog);
//! model.fit(&ds.plans.iter().take(16).collect::<Vec<_>>());
//!
//! // Compile the serving batch once; run it on as many cores as the host
//! // offers. Thread count never changes the answer.
//! let plans: Vec<&Plan> = ds.plans.iter().collect();
//! let mut program = model.compile_program(&plans);
//! let serial = model.predict_compiled(&mut program);
//! let threaded = model.predict_compiled_with(&mut program, 4);
//! assert_eq!(serial, threaded);
//! ```

use crate::config::TargetCodec;
use crate::tree::RatioCaps;
use crate::unit::{PackedUnits, UnitSet};
use qpp_nn::{BufferPool, Executor, Matrix};
use qpp_plansim::features::{Featurizer, Whitener};
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::{Plan, PlanNode};
use std::collections::BTreeMap;

/// Which inference engine answers a prediction request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferEngine {
    /// Per-equivalence-class [`crate::tree::TreeBatch`] evaluation (the
    /// training-time data layout; §5.1.1 batching only).
    Classes,
    /// Compiled wavefront [`PlanProgram`] evaluation (the serving layout),
    /// executed on `threads` worker threads (`1` = the sequential path;
    /// results are bit-identical at any thread count).
    Program {
        /// Worker threads for [`PlanProgram::run_parallel`].
        threads: usize,
    },
}

impl InferEngine {
    /// Parses the CLI spelling (`classes` | `program`); `program` defaults
    /// to single-threaded execution (compose with
    /// [`InferEngine::with_threads`] for the CLI's `--threads` flag).
    pub fn parse(s: &str) -> Option<InferEngine> {
        match s {
            "classes" => Some(InferEngine::Classes),
            "program" => Some(InferEngine::Program { threads: 1 }),
            _ => None,
        }
    }

    /// Display name (the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            InferEngine::Classes => "classes",
            InferEngine::Program { .. } => "program",
        }
    }

    /// Worker threads this engine evaluates with (always 1 for the
    /// per-class path, which has no parallel mode).
    pub fn threads(self) -> usize {
        match self {
            InferEngine::Classes => 1,
            InferEngine::Program { threads } => threads.max(1),
        }
    }

    /// This engine with its thread count replaced (no-op for
    /// [`InferEngine::Classes`]).
    pub fn with_threads(self, threads: usize) -> InferEngine {
        match self {
            InferEngine::Classes => InferEngine::Classes,
            InferEngine::Program { .. } => InferEngine::Program { threads: threads.max(1) },
        }
    }
}

impl Default for InferEngine {
    /// The serving default: the compiled wavefront engine on one thread.
    fn default() -> InferEngine {
        InferEngine::Program { threads: 1 }
    }
}

/// Maximum rows per compiled step. Wavefronts larger than this are split
/// into row chunks so each gemm's working set (input chunk, activation
/// buffers, one unit's weights) stays cache-resident — measured on the
/// `infer_throughput` bench, monolithic several-hundred-row gemms run up
/// to ~2x slower per row than cache-sized ones on the same kernel.
pub(crate) const STEP_CHUNK_ROWS: usize = 32;

/// One wavefront step: every node (across all plans) at one
/// `(height, OpKind)` key, executed as a single gemm (large wavefronts
/// are split into [`STEP_CHUNK_ROWS`]-row chunks).
///
/// Shared between the batch-compiled [`PlanProgram`] and the incremental
/// [`crate::stream::ProgramBuilder`] (which additionally grows/shrinks a
/// step's member set in place — `input` is then allocated with
/// [`Matrix::with_row_capacity`] so membership churn stays allocation-free).
pub(crate) struct Step {
    pub(crate) kind: OpKind,
    /// Global output-buffer row of each member node.
    pub(crate) rows: Vec<usize>,
    /// Global rows of each member's children, node-major
    /// (`child_rows[i * arity + j]` is member `i`'s `j`-th child).
    pub(crate) child_rows: Vec<usize>,
    pub(crate) arity: usize,
    /// Width of the feature prefix of `input`.
    pub(crate) feat_width: usize,
    /// Preallocated input, `members × in_dim`. Feature columns are filled
    /// at compile/admit time (features are batch-invariant); child columns
    /// are overwritten by the gather on every run.
    pub(crate) input: Matrix,
}

/// Accumulates per-node records into `(height, OpKind)` wavefront drafts
/// and chunks them into executable [`Step`]s — the one place the wavefront
/// grouping/chunking policy lives, shared by the serving compiler
/// ([`PlanProgram::compile`]) and the differentiable training compiler
/// ([`crate::train_program::ProgramTape`]), so the two engines can never
/// disagree about how nodes map onto gemm rows.
pub(crate) struct WavefrontBuilder {
    /// BTreeMap keyed by (height, family index): iteration order IS the
    /// execution order — heights ascending, families in stable order.
    drafts: BTreeMap<(usize, usize), WavefrontDraft>,
}

struct WavefrontDraft {
    kind: OpKind,
    rows: Vec<usize>,
    child_rows: Vec<usize>,
    /// Whitened features of all members, one `feat_width` run per member
    /// (flat: one allocation per draft, not per node).
    feat_data: Vec<f32>,
    feat_width: usize,
}

impl WavefrontBuilder {
    pub(crate) fn new() -> WavefrontBuilder {
        WavefrontBuilder { drafts: BTreeMap::new() }
    }

    /// Records one node: its global output row, its children's global rows
    /// (left to right, `kind.arity()` of them) and its whitened feature
    /// row.
    ///
    /// # Panics
    /// Panics if `feat`'s length disagrees with earlier members of the
    /// same wavefront (an inconsistent featurizer).
    pub(crate) fn push(
        &mut self,
        height: usize,
        kind: OpKind,
        row: usize,
        feat: &[f32],
        child_rows: &[usize],
    ) {
        debug_assert_eq!(child_rows.len(), kind.arity(), "arity checked by callers");
        let draft =
            self.drafts.entry((height, kind.index())).or_insert_with(|| WavefrontDraft {
                kind,
                rows: Vec::new(),
                child_rows: Vec::new(),
                feat_data: Vec::new(),
                feat_width: feat.len(),
            });
        assert_eq!(feat.len(), draft.feat_width, "inconsistent feature size for {kind:?}");
        draft.rows.push(row);
        draft.child_rows.extend_from_slice(child_rows);
        draft.feat_data.extend_from_slice(feat);
    }

    /// Chunks the accumulated drafts into [`Step`]s plus the height-level
    /// schedule. Step input matrices come from `alloc` (pass
    /// `Matrix::zeros` for fresh programs, a pool-backed closure to
    /// recycle a retired program's buffers); only the feature prefix of
    /// each row is written — child columns are overwritten by the gather
    /// on every run.
    ///
    /// Oversized wavefronts are split into `chunk_rows`-row chunks;
    /// chunking changes nothing semantically (each output row of `X·W`
    /// depends only on its own input row), so the size is purely a
    /// throughput/parallelism knob: the serving engine passes the
    /// cache-sized [`STEP_CHUNK_ROWS`] (one chunk's input, output and the
    /// unit's weights stay cache-resident, and chunks are the parallel
    /// partition grain), the training tape a larger
    /// [`crate::train_program::TRAIN_CHUNK_ROWS`] (three gemms per layer
    /// per step make per-call overhead — gathers, pool traffic, loop
    /// prologues — worth amortizing over more rows).
    ///
    /// # Panics
    /// Panics if a wavefront's input width disagrees with its unit's input
    /// dimension (a featurizer/model mismatch), or if `chunk_rows` is 0.
    pub(crate) fn finish(
        self,
        units: &UnitSet,
        chunk_rows: usize,
        alloc: &mut dyn FnMut(usize, usize) -> Matrix,
    ) -> (Vec<Step>, Vec<Vec<u32>>) {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        let out_w = units.out_size();
        let mut steps = Vec::new();
        let mut levels: Vec<Vec<u32>> = Vec::new();
        let mut cur_height = usize::MAX;
        for ((height, _), draft) in self.drafts {
            if height != cur_height {
                levels.push(Vec::new());
                cur_height = height;
            }
            let arity = draft.kind.arity();
            let feat_width = draft.feat_width;
            let in_dim = feat_width + arity * out_w;
            assert_eq!(
                in_dim,
                units.unit(draft.kind).in_dim(),
                "feature/model shape mismatch for {:?}",
                draft.kind
            );
            for (c, rows) in draft.rows.chunks(chunk_rows).enumerate() {
                let members = rows.len();
                let base = c * chunk_rows;
                let mut input = alloc(members, in_dim);
                debug_assert_eq!((input.rows(), input.cols()), (members, in_dim));
                for i in 0..members {
                    let f = &draft.feat_data[(base + i) * feat_width..(base + i + 1) * feat_width];
                    input.row_mut(i)[..feat_width].copy_from_slice(f);
                }
                steps.push(Step {
                    kind: draft.kind,
                    rows: rows.to_vec(),
                    child_rows: draft.child_rows[base * arity..(base + members) * arity].to_vec(),
                    arity,
                    feat_width,
                    input,
                });
                levels.last_mut().expect("level opened above").push((steps.len() - 1) as u32);
            }
        }
        (steps, levels)
    }
}

/// Per-plan bookkeeping for reading results back out of the flat output
/// buffer (and for the clamped envelope walk).
struct PlanSlot {
    /// First global output row of this plan; post-order position `k` lives
    /// at row `base + k` and the root at `base + len - 1`.
    base: usize,
    /// Number of positions (nodes) in the plan.
    len: usize,
    /// Flat post-order lowering (plan-local child lists, heights).
    lowering: crate::lower::Lowering,
    /// Operator family per position (for envelope cap lookups).
    kinds: Vec<OpKind>,
}

/// A compiled inference program over a heterogeneous batch of plans.
///
/// Compile once per batch with [`PlanProgram::compile`], then run any
/// number of times against unit sets of the same shape; all buffers are
/// preallocated at compile time and reused across runs. Execution is
/// single-threaded through [`PlanProgram::predict_roots`] and friends, or
/// multicore through [`PlanProgram::run_parallel`] and the `_threaded`
/// prediction variants — thread count never changes the results.
pub struct PlanProgram {
    steps: Vec<Step>,
    /// Step ids grouped into one height level each, ascending: all steps
    /// of `levels[l]` read only output rows written by levels `< l`, which
    /// is what makes a level's steps safe to run concurrently. Id lists
    /// (rather than ranges) so the same executors serve the incremental
    /// engine, whose step slab is not level-contiguous.
    levels: Vec<Vec<u32>>,
    plans: Vec<PlanSlot>,
    /// `total_nodes × out_w`; row `r` holds node `r`'s `(latency ⌢ data)`.
    outputs: Matrix,
    pool: BufferPool,
    out_w: usize,
    /// Fingerprint of the fitted state this program was compiled against
    /// (`None` for programs compiled directly via [`PlanProgram::compile`];
    /// stamped by [`crate::QppNet::compile_program`] so a refit — or a
    /// different model — invalidates the program instead of silently
    /// serving stale features).
    fingerprint: Option<u64>,
    /// Packed-panel kernel state (`qpp_nn::packed`) plus the weight-sample
    /// digest of the unit set it was packed from. The program's documented
    /// contract is "run against any unit set of the same shape", so the
    /// packed copy cannot be pinned to one set; instead every run computes
    /// the O(layers) digest (`PackedUnits::weights_digest`) and repacks —
    /// O(params), material on paper-sized units — only when the weights
    /// actually moved. Steady-state serving (same fitted weights every
    /// run) therefore packs exactly once, while the panels make every
    /// wavefront gemm stream contiguous cache-line-aligned columns at the
    /// full SIMD tier width.
    packed: Option<(u64, PackedUnits)>,
}

impl PlanProgram {
    /// Compiles `roots` into a wavefront schedule against the fitted
    /// model's shape (`units` sizes the routing buffers; `featurizer` and
    /// `whitener` produce the same whitened features the training path
    /// uses).
    ///
    /// # Panics
    /// Panics if a node's feature size disagrees with its unit's input
    /// dimension (a featurizer/model mismatch).
    pub fn compile(
        featurizer: &Featurizer,
        whitener: &Whitener,
        units: &UnitSet,
        roots: &[&PlanNode],
    ) -> PlanProgram {
        let out_w = units.out_size();

        let mut builder = WavefrontBuilder::new();
        let mut plans = Vec::with_capacity(roots.len());
        let mut total_nodes = 0usize;
        let mut scratch = Vec::new();
        let mut child_scratch = Vec::new();

        for root in roots {
            let nodes = root.postorder();
            let lowering = crate::lower::lower(root);
            let base = total_nodes;
            total_nodes += nodes.len();

            for (k, node) in nodes.iter().enumerate() {
                let kind = node.op.kind();
                // Hard assert: plans can arrive from unvalidated JSON (the
                // CLI's `predict --input`), and a wrong arity here would
                // shift every later member's child rows. Compilation runs
                // once per batch, so the check costs nothing that matters.
                assert_eq!(
                    lowering.children_of(k).len(),
                    kind.arity(),
                    "malformed plan: {kind:?} node with {} children (arity {})",
                    lowering.children_of(k).len(),
                    kind.arity()
                );
                whitener.features_into(featurizer, node, &mut scratch);
                child_scratch.clear();
                child_scratch.extend(lowering.children_of(k).iter().map(|&c| base + c));
                builder.push(lowering.height_of(k), kind, base + k, &scratch, &child_scratch);
            }

            plans.push(PlanSlot {
                base,
                len: nodes.len(),
                kinds: nodes.iter().map(|n| n.op.kind()).collect(),
                lowering,
            });
        }

        let (steps, levels) =
            builder.finish(units, STEP_CHUNK_ROWS, &mut |rows, cols| Matrix::zeros(rows, cols));

        PlanProgram {
            steps,
            levels,
            plans,
            outputs: Matrix::zeros(total_nodes, out_w),
            pool: BufferPool::new(),
            out_w,
            fingerprint: None,
            packed: None,
        }
    }

    /// The raw output buffer, for differential tests against the training
    /// tape (which promises bit-identical forward rows).
    #[cfg(test)]
    pub(crate) fn outputs_for_tests(&self) -> &Matrix {
        &self.outputs
    }

    /// Stamps the fitted-state fingerprint this program was compiled
    /// against (see [`PlanProgram::fingerprint`]).
    pub(crate) fn stamp_fingerprint(&mut self, fingerprint: u64) {
        self.fingerprint = Some(fingerprint);
    }

    /// The fitted-state fingerprint stamped at compile time, if any.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// Number of plans in the compiled batch.
    pub fn num_plans(&self) -> usize {
        self.plans.len()
    }

    /// Total operator nodes across all plans.
    pub fn num_nodes(&self) -> usize {
        self.outputs.rows()
    }

    /// Number of wavefront steps — i.e. gemm calls per unit-layer — the
    /// schedule executes. The per-class path would execute one gemm per
    /// (equivalence class, position) instead.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of height levels in the schedule. Steps within one level are
    /// mutually independent — this is the parallelism axis of
    /// [`PlanProgram::run_parallel`] (and a barrier count: one
    /// synchronization per level).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    fn check_units_width(&self, units: &UnitSet) {
        assert_eq!(
            units.out_size(),
            self.out_w,
            "unit set output width {} does not match compiled width {}",
            units.out_size(),
            self.out_w
        );
    }

    /// Executes the schedule bottom-up across `threads` worker threads,
    /// filling the output buffer read by the `predict_*` methods.
    ///
    /// Each height level's steps (already split into cache-sized 32-row
    /// chunks at compile time — that chunking is the partition grain) are
    /// dealt round-robin across the process-wide resident worker pool
    /// ([`qpp_nn::Executor::global`] — parked threads created once, not
    /// spawned per run); a barrier separates levels. Workers are lock-free
    /// on the hot path: every step writes a disjoint set of output rows
    /// and reads only rows written at strictly lower levels, and each
    /// resident worker gathers into scratch taken from its own persistent
    /// executor-owned [`BufferPool`], so steady-state parallel serving
    /// performs zero allocation per worker.
    ///
    /// **Determinism:** results are bit-identical for every `threads`
    /// value (the differential suite asserts exact equality at 1/2/4/8) —
    /// each node is computed by the same fused kernel on the same input
    /// rows regardless of which worker runs its step; only the assignment
    /// of steps to workers changes. See `DESIGN.md` §7 and §10.
    ///
    /// The effective thread count is capped at the widest level's step
    /// count, so small programs (or programs whose wavefronts all fit one
    /// 32-row chunk) fall back to the sequential path instead of paying
    /// dispatch and barrier overhead for no available parallelism.
    pub fn run_parallel(&mut self, units: &UnitSet, threads: usize) {
        self.run_on(units, Executor::global(), threads);
    }

    /// [`PlanProgram::run_parallel`] against an explicit executor — the
    /// seam the tests use to observe a private pool's steady state.
    pub(crate) fn run_on(&mut self, units: &UnitSet, exec: &Executor, threads: usize) {
        self.check_units_width(units);
        // Refresh the packed panels only when the caller's weights differ
        // from the panels' source (see the `packed` field doc).
        // Serving-only programs never need the transposed backward panels.
        let digest = PackedUnits::weights_digest(units);
        match &mut self.packed {
            Some((d, _)) if *d == digest => {}
            Some((d, p)) => {
                p.repack_from(units);
                *d = digest;
            }
            None => self.packed = Some((digest, PackedUnits::pack(units, false))),
        }
        run_schedule(
            &mut self.steps,
            &self.levels,
            &self.packed.as_ref().expect("packed above").1,
            &mut self.outputs,
            &mut self.pool,
            exec,
            self.out_w,
            threads,
        );
    }

    fn decode_roots(&self, codec: &TargetCodec) -> Vec<f64> {
        self.plans
            .iter()
            .map(|p| codec.decode(self.outputs.get(p.base + p.len - 1, 0)))
            .collect()
    }

    /// Folds the structural envelope over decoded per-position latencies,
    /// in place — the same monotonicity + bounded-amplification walk as
    /// [`crate::tree::TreeBatch::predict_all_clamped`]. Post order puts
    /// children before parents, so clamped child values feed the parent's
    /// envelope exactly as in `TreeBatch`.
    fn clamp_envelope(&self, all: &mut [Vec<f64>], caps: &RatioCaps) {
        for (slot, preds) in self.plans.iter().zip(all.iter_mut()) {
            clamp_plan_envelope(preds, &slot.lowering, &slot.kinds, caps);
        }
    }

    /// Decoded root-latency predictions (milliseconds), one per plan, in
    /// the order the plans were compiled.
    pub fn predict_roots(&mut self, units: &UnitSet, codec: &TargetCodec) -> Vec<f64> {
        self.predict_roots_threaded(units, codec, 1)
    }

    /// [`PlanProgram::predict_roots`] on `threads` workers (see
    /// [`PlanProgram::run_parallel`]; results are identical at any thread
    /// count).
    pub fn predict_roots_threaded(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        threads: usize,
    ) -> Vec<f64> {
        self.run_parallel(units, threads);
        self.decode_roots(codec)
    }

    /// Decoded latency predictions for every position of every plan
    /// (`result[plan][position]`, post order, milliseconds).
    ///
    /// Note the index order differs from
    /// [`crate::tree::TreeBatch::predict_all`] (`[position][plan]`): a
    /// heterogeneous batch has no shared position axis.
    pub fn predict_all(&mut self, units: &UnitSet, codec: &TargetCodec) -> Vec<Vec<f64>> {
        self.predict_all_threaded(units, codec, 1)
    }

    /// [`PlanProgram::predict_all`] on `threads` workers.
    pub fn predict_all_threaded(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        self.run_parallel(units, threads);
        self.plans
            .iter()
            .map(|p| {
                (p.base..p.base + p.len).map(|r| codec.decode(self.outputs.get(r, 0))).collect()
            })
            .collect()
    }

    /// Like [`PlanProgram::predict_all`], projected onto the structural
    /// envelope of inclusive latencies — the same monotonicity +
    /// bounded-amplification fold as
    /// [`crate::tree::TreeBatch::predict_all_clamped`].
    pub fn predict_all_clamped(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        caps: &RatioCaps,
    ) -> Vec<Vec<f64>> {
        self.predict_all_clamped_threaded(units, codec, caps, 1)
    }

    /// [`PlanProgram::predict_all_clamped`] on `threads` workers (the
    /// envelope fold itself runs on the calling thread — it is a cheap
    /// sequential walk over decoded scalars).
    pub fn predict_all_clamped_threaded(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        caps: &RatioCaps,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        let mut all = self.predict_all_threaded(units, codec, threads);
        self.clamp_envelope(&mut all, caps);
        all
    }

    /// Root predictions under the structural envelope (see
    /// [`PlanProgram::predict_all_clamped`]).
    pub fn predict_roots_clamped(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        caps: &RatioCaps,
    ) -> Vec<f64> {
        self.predict_roots_clamped_threaded(units, codec, caps, 1)
    }

    /// [`PlanProgram::predict_roots_clamped`] on `threads` workers.
    pub fn predict_roots_clamped_threaded(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        caps: &RatioCaps,
        threads: usize,
    ) -> Vec<f64> {
        self.predict_all_clamped_threaded(units, codec, caps, threads)
            .into_iter()
            .map(|per_plan| *per_plan.last().expect("non-empty plan"))
            .collect()
    }
}

/// The widest level's step count — the effective parallelism bound of a
/// wavefront schedule (the executors cap worker counts here so schedules
/// with no available parallelism fall back to the sequential path).
pub(crate) fn max_level_width(levels: &[Vec<u32>]) -> usize {
    levels.iter().map(|l| l.len()).max().unwrap_or(0)
}

/// Folds the structural envelope over one plan's decoded per-position
/// latencies, in place — the same monotonicity + bounded-amplification
/// walk as [`crate::tree::TreeBatch::predict_all_clamped`]. Post order
/// puts children before parents, so clamped child values feed the parent's
/// envelope. Shared by [`PlanProgram`] and the incremental builder.
pub(crate) fn clamp_plan_envelope(
    preds: &mut [f64],
    lowering: &crate::lower::Lowering,
    kinds: &[OpKind],
    caps: &RatioCaps,
) {
    for k in 0..preds.len() {
        let kids = lowering.children_of(k);
        if kids.is_empty() {
            continue;
        }
        let max_child = kids.iter().map(|&c| preds[c]).fold(0.0f64, f64::max);
        let cap = caps.cap(kinds[k], max_child);
        let (lo, hi) = (max_child, max_child * cap.max(1.0));
        preds[k] = preds[k].clamp(lo, hi.max(lo));
    }
}

/// Copies each member's child output rows into the child column blocks of
/// `dst` (`dst[i, feat_width + j·out_w ..]` ← row `child_rows[i·arity + j]`
/// of the source). This is **the** row-routing loop every engine leans on
/// — the sequential and parallel serving executors and both training-tape
/// sweeps share it, so the `(feat prefix ⌢ child₁ ⌢ … ⌢ childₖ)` input
/// layout (and the bit-identity contracts built on it) cannot drift
/// between copies. `row_of` abstracts the source: plain matrix rows on
/// single-threaded paths, a [`SharedRows`] view under workers.
///
/// `dst` is either the step's own baked input (its feature prefix is
/// already resident) or a scratch clone of it; `dst.rows()` is the member
/// count.
pub(crate) fn gather_child_columns<'a>(
    child_rows: &[usize],
    arity: usize,
    feat_width: usize,
    out_w: usize,
    dst: &mut Matrix,
    row_of: impl Fn(usize) -> &'a [f32],
) {
    if arity == 0 {
        return;
    }
    for i in 0..dst.rows() {
        for j in 0..arity {
            let src = child_rows[i * arity + j];
            let start = feat_width + j * out_w;
            dst.row_mut(i)[start..start + out_w].copy_from_slice(row_of(src));
        }
    }
}

/// Executes a wavefront schedule bottom-up on the calling thread: for each
/// step (levels ascending, in level order) routes child outputs into the
/// step's baked input and runs the unit forward through `pool`. Steps are
/// visited via the level id lists, so the step slab may contain retired
/// (unlisted) entries — the incremental engine relies on this.
pub(crate) fn run_levels_seq(
    steps: &mut [Step],
    levels: &[Vec<u32>],
    packed: &PackedUnits,
    outputs: &mut Matrix,
    pool: &mut BufferPool,
    out_w: usize,
) {
    for level in levels {
        for &id in level {
            let step = &mut steps[id as usize];
            // Route child outputs (written by earlier wavefronts) into the
            // child columns of this step's input.
            gather_child_columns(
                &step.child_rows,
                step.arity,
                step.feat_width,
                out_w,
                &mut step.input,
                |r| outputs.row(r),
            );
            let out = packed.unit(step.kind).forward_pooled(&step.input, pool);
            out.scatter_rows_into(&step.rows, outputs);
            pool.give(out);
        }
    }
}

/// Dispatches a wavefront schedule onto the right executor — the single
/// decision point shared by [`PlanProgram`] and the incremental builder:
/// the thread count is capped at the widest level (no parallelism worth
/// dispatching for → the sequential in-place path, which never touches
/// `exec`), otherwise the levels run across `exec`'s resident worker
/// pool, each worker using its executor-owned persistent [`BufferPool`].
#[allow(clippy::too_many_arguments)] // two call sites; a context struct would just rename these
pub(crate) fn run_schedule(
    steps: &mut [Step],
    levels: &[Vec<u32>],
    packed: &PackedUnits,
    outputs: &mut Matrix,
    pool: &mut BufferPool,
    exec: &Executor,
    out_w: usize,
    threads: usize,
) {
    let threads = threads.min(max_level_width(levels));
    if threads <= 1 {
        run_levels_seq(steps, levels, packed, outputs, pool, out_w);
    } else {
        run_levels_parallel(steps, levels, packed, outputs, exec, threads, out_w);
    }
}

/// Executes a wavefront schedule across `threads` resident workers of
/// `exec` (the caller participates as worker 0; callers must pass
/// `threads >= 2` and have already handled the `threads <= 1` fallback).
/// Each height level's steps are dealt round-robin; a barrier separates
/// levels. See [`PlanProgram::run_parallel`] for the determinism and
/// poisoning contracts.
pub(crate) fn run_levels_parallel(
    steps: &[Step],
    levels: &[Vec<u32>],
    packed: &PackedUnits,
    outputs: &mut Matrix,
    exec: &Executor,
    threads: usize,
    out_w: usize,
) {
    let outputs = SharedRows::new(outputs);
    // Workers carry no private state beyond their resident pool.
    let mut workers = vec![(); threads];
    run_levels_parallel_with(exec, levels, false, &mut workers, &|(), pool, id| {
        let step = &steps[id as usize];
        let out = if step.arity == 0 {
            // Leaves: the baked feature matrix IS the full input.
            packed.unit(step.kind).forward_pooled(&step.input, pool)
        } else {
            // Unlike the sequential path — which gathers child rows into
            // the step's own input matrix — workers assemble each step's
            // input in scratch taken from their private pool, so the
            // compiled steps stay shared and immutable across threads. The
            // gemm consumes the exact same input values either way, and
            // scratch has the same shape as the baked input, so the kernel
            // (and its result, bit for bit) is identical to the sequential
            // path's.
            let members = step.rows.len();
            let fw = step.feat_width;
            let mut scratch = pool.take(members, step.input.cols());
            for i in 0..members {
                scratch.row_mut(i)[..fw].copy_from_slice(&step.input.row(i)[..fw]);
            }
            // SAFETY (row reads): child rows live at strictly lower
            // heights — fully written in an earlier level and
            // barrier-sequenced with these reads.
            gather_child_columns(&step.child_rows, step.arity, fw, out_w, &mut scratch, |r| {
                unsafe { outputs.row(r) }
            });
            let out = packed.unit(step.kind).forward_pooled(&scratch, pool);
            pool.give(scratch);
            out
        };
        for (k, &r) in step.rows.iter().enumerate() {
            // SAFETY: each output row belongs to exactly one step, and
            // this worker owns this step within the current level.
            unsafe { outputs.write_row(r, out.row(k)) };
        }
        pool.give(out);
    });
}

/// The generic level-barrier executor behind every multicore wavefront
/// pass — serving forward ([`run_levels_parallel`]) and the training
/// tape's forward *and* backward
/// ([`crate::train_program::ProgramTape`]). Deals each level's step ids
/// round-robin across `workers.len()` workers (the **caller participates
/// as worker 0**; callers pass at least two worker states and handle the
/// single-threaded fallback themselves), with one [`std::sync::Barrier`]
/// per level. `reverse` iterates the levels top-down — the backward pass's
/// order, where a parent's gradient must be fully routed before its
/// children's level reads it.
///
/// Workers are **resident**: the pass dispatches onto `exec`'s parked
/// worker pool ([`qpp_nn::Executor`]) instead of spawning scoped threads
/// per run, so a run pays one condvar wake per worker instead of a ~0.2 ms
/// thread spawn. Determinism is untouched — worker `w` still runs
/// positions `w, w + threads, …` of every level, so which worker runs a
/// step depends only on the level lists and the worker count, never on
/// which OS thread hosts the worker.
///
/// `run_step` receives the worker's private mutable state (`W`: gradient
/// accumulators, …), the worker's *resident* [`BufferPool`] (owned by the
/// executor and kept warm across runs), and a step id; everything shared
/// (steps, units, raw output views) is captured by the closure. The
/// round-robin deal is position-based, so which worker runs a step is
/// deterministic given the level lists and worker count — but `run_step`
/// must not rely on *cross-step* ordering within a level.
///
/// A panic inside a step (e.g. a shape assert against a mismatched unit
/// set) must not strand the other workers at the barrier: each level's
/// work is caught, a shared poison flag is raised, the barrier is still
/// reached, and every worker exits cleanly after the wait — resident
/// workers go back to parking, poisoned run or not. The caught payload
/// itself is parked in a shared slot (first panicking worker wins) and
/// **re-raised on the calling thread after the run completes** — so the
/// caller observes the original panic (same message as the sequential
/// path) no matter which worker's share the failing step landed in.
pub(crate) fn run_levels_parallel_with<W: Send>(
    exec: &Executor,
    levels: &[Vec<u32>],
    reverse: bool,
    workers: &mut [W],
    run_step: &(impl Fn(&mut W, &mut BufferPool, u32) + Sync),
) {
    use std::sync::atomic::Ordering;
    let threads = workers.len();
    debug_assert!(threads >= 2, "parallel executor needs >= 2 workers");
    let barrier = std::sync::Barrier::new(threads);
    let poisoned = std::sync::atomic::AtomicBool::new(false);
    let panic_slot: std::sync::Mutex<Option<Box<dyn std::any::Any + Send>>> =
        std::sync::Mutex::new(None);

    // One worker's whole pass: its round-robin share of every level, in
    // schedule order, poison-checked at each barrier.
    let worker_loop = |worker: usize, state: &mut W, pool: &mut BufferPool| {
        let mut level_pass = |level: &Vec<u32>| {
            // AssertUnwindSafe: on panic the worker state may hold
            // un-given buffers and this level's outputs may be partially
            // written — the same states a sequential-path panic leaves
            // behind; the payload is re-raised on the caller after the
            // run, so no caller observes them.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for &id in level.iter().skip(worker).step_by(threads) {
                    run_step(state, pool, id);
                }
            }));
            if let Err(payload) = result {
                poisoned.store(true, Ordering::Release);
                // The lock guard must drop before the barrier: another
                // worker panicking at this same level contends for the
                // slot on its own way to the barrier.
                panic_slot.lock().expect("panic slot lock").get_or_insert(payload);
                barrier.wait();
                return false;
            }
            barrier.wait();
            !poisoned.load(Ordering::Acquire)
        };
        if reverse {
            for level in levels.iter().rev() {
                if !level_pass(level) {
                    return;
                }
            }
        } else {
            for level in levels {
                if !level_pass(level) {
                    return;
                }
            }
        }
    };

    // Hand each resident worker its own `W` by index. The pointer is
    // smuggled as `usize` so the dispatch closure is `Sync`.
    let workers_addr = workers.as_mut_ptr() as usize;
    exec.run(threads, &|worker, pool| {
        // SAFETY: the executor calls the job with each index in
        // `0..threads` exactly once per run, so every `&mut W` handed out
        // here is disjoint; the slice outlives the run because `exec.run`
        // blocks until every worker finished.
        let state = unsafe { &mut *(workers_addr as *mut W).add(worker) };
        worker_loop(worker, state, pool);
    });
    if let Some(payload) = panic_slot.into_inner().expect("panic slot lock") {
        std::panic::resume_unwind(payload);
    }
}

/// A raw-pointer view of a shared row-major matrix that lets worker
/// threads access disjoint rows without locks.
///
/// Safe Rust cannot express "N threads each mutate a different subset of
/// rows of one matrix", so this view carries the proof obligation instead:
///
/// * every output row belongs to exactly **one** step (compile assigns
///   each node one global row, and a node joins one draft chunk), so two
///   workers never write the same row within a level — and in the training
///   backward, every *gradient* row is written by exactly one step too
///   (each node has at most one parent, and the loss seed is written
///   before the sweep starts);
/// * a step only **reads** rows sequenced by the inter-level barrier
///   (`Barrier::wait` is an acquire/release point): child outputs written
///   at strictly lower heights in the forward, parent-routed gradients
///   written at strictly higher heights in the backward;
/// * the view lives only inside one executor invocation's scope, which
///   holds the `&mut Matrix` borrow for the view's whole lifetime.
pub(crate) struct SharedRows<'a> {
    ptr: *mut f32,
    rows: usize,
    cols: usize,
    _borrow: std::marker::PhantomData<&'a mut Matrix>,
}

/// SAFETY: see the type-level contract — all row accesses are disjoint or
/// barrier-ordered, so handing the view to multiple threads is sound.
unsafe impl Send for SharedRows<'_> {}
/// SAFETY: as for [`Send`].
unsafe impl Sync for SharedRows<'_> {}

impl<'a> SharedRows<'a> {
    pub(crate) fn new(m: &'a mut Matrix) -> SharedRows<'a> {
        let (rows, cols) = (m.rows(), m.cols());
        SharedRows { ptr: m.as_mut_slice().as_mut_ptr(), rows, cols, _borrow: std::marker::PhantomData }
    }

    /// Reads row `i`.
    ///
    /// # Safety
    /// `i` must have been fully written in an earlier level and no thread
    /// may be writing it concurrently.
    #[inline]
    pub(crate) unsafe fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows, "row {i} out of range for {}x{} shared view", self.rows, self.cols);
        std::slice::from_raw_parts(self.ptr.add(i * self.cols), self.cols)
    }

    /// Overwrites row `i` with `src`.
    ///
    /// # Safety
    /// The caller must be the only thread accessing row `i` in the current
    /// level (each row belongs to exactly one step).
    #[inline]
    pub(crate) unsafe fn write_row(&self, i: usize, src: &[f32]) {
        debug_assert!(i < self.rows, "row {i} out of range for {}x{} shared view", self.rows, self.cols);
        debug_assert_eq!(src.len(), self.cols, "row width mismatch in shared write");
        std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(i * self.cols), self.cols);
    }

    /// Accumulates `src` into row `i` (`row += src`) — the scatter-add the
    /// training backward routes child gradients with (the row already
    /// holds the loss seed, so this must add, not overwrite).
    ///
    /// # Safety
    /// As [`SharedRows::write_row`]: the caller must be the only thread
    /// accessing row `i` in the current level. In the backward sweep each
    /// gradient row is touched by exactly one step — a node has at most
    /// one parent.
    #[inline]
    pub(crate) unsafe fn add_to_row(&self, i: usize, src: &[f32]) {
        debug_assert!(i < self.rows, "row {i} out of range for {}x{} shared view", self.rows, self.cols);
        debug_assert_eq!(src.len(), self.cols, "row width mismatch in shared add");
        let dst = std::slice::from_raw_parts_mut(self.ptr.add(i * self.cols), self.cols);
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }
}

/// Predicts root latencies (milliseconds) for `plans` through the chosen
/// engine — the single dispatch point behind [`crate::QppNet`]'s
/// prediction API and the `qpp predict` CLI.
pub fn predict_plans_with(
    engine: InferEngine,
    units: &UnitSet,
    featurizer: &Featurizer,
    whitener: &Whitener,
    codec: &TargetCodec,
    ratio_caps: Option<&RatioCaps>,
    plans: &[&Plan],
) -> Vec<f64> {
    match engine {
        InferEngine::Classes => {
            crate::train::predict_plans(units, featurizer, whitener, codec, ratio_caps, plans)
        }
        InferEngine::Program { threads } => {
            let roots: Vec<&PlanNode> = plans.iter().map(|p| &p.root).collect();
            let mut program = PlanProgram::compile(featurizer, whitener, units, &roots);
            match ratio_caps {
                Some(caps) => program.predict_roots_clamped_threaded(units, codec, caps, threads),
                None => program.predict_roots_threaded(units, codec, threads),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{QppConfig, TargetTransform};
    use crate::tree::TreeBatch;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;
    use rand::SeedableRng;

    fn setup() -> (Dataset, Featurizer, Whitener, UnitSet, TargetCodec) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 32, 17);
        let fz = Featurizer::new(&ds.catalog);
        let wh = Whitener::fit(&fz, ds.plans.iter());
        let cfg = QppConfig::tiny();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let units = UnitSet::new(&cfg, &fz, &mut rng);
        let codec = TargetCodec::fit(TargetTransform::Log1p, ds.plans.iter().map(|p| p.latency_ms()));
        (ds, fz, wh, units, codec)
    }

    #[test]
    fn heterogeneous_batch_matches_per_plan_tree_batches() {
        let (ds, fz, wh, units, codec) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        assert_eq!(program.num_plans(), ds.plans.len());
        let program_preds = program.predict_roots(&units, &codec);

        for (i, plan) in ds.plans.iter().enumerate() {
            let tb = TreeBatch::build(&fz, &wh, &codec, &[&plan.root]);
            let single = tb.predict_roots(&units, &codec)[0];
            let rel = (single - program_preds[i]).abs() / (1.0 + single.abs());
            assert!(rel < 1e-5, "plan {i}: tree {single} vs program {}", program_preds[i]);
        }
    }

    #[test]
    fn per_operator_predictions_match_tree_batch() {
        let (ds, fz, wh, units, codec) = setup();
        let plan = ds.plans.iter().max_by_key(|p| p.node_count()).unwrap();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &[&plan.root]);
        let program_all = program.predict_all(&units, &codec);
        let tb = TreeBatch::build(&fz, &wh, &codec, &[&plan.root]);
        let tree_all = tb.predict_all(&units, &codec);
        assert_eq!(program_all[0].len(), tree_all.len());
        for (k, per_pos) in tree_all.iter().enumerate() {
            let rel = (per_pos[0] - program_all[0][k]).abs() / (1.0 + per_pos[0].abs());
            assert!(rel < 1e-5, "position {k}");
        }
    }

    #[test]
    fn clamped_predictions_match_tree_batch() {
        let (ds, fz, wh, units, codec) = setup();
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        let program_preds = program.predict_roots_clamped(&units, &codec, &caps);
        for (i, plan) in ds.plans.iter().enumerate() {
            let tb = TreeBatch::build(&fz, &wh, &codec, &[&plan.root]);
            let single = tb.predict_roots_clamped(&units, &codec, &caps)[0];
            let rel = (single - program_preds[i]).abs() / (1.0 + single.abs());
            assert!(rel < 1e-5, "plan {i}: tree {single} vs program {}", program_preds[i]);
        }
    }

    #[test]
    fn repeated_runs_are_stable_and_allocation_reusing() {
        let (ds, fz, wh, units, codec) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().take(8).map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        let first = program.predict_roots(&units, &codec);
        let second = program.predict_roots(&units, &codec);
        assert_eq!(first, second, "stale child routing between runs");
    }

    #[test]
    fn wavefronts_batch_across_plans() {
        let (ds, fz, wh, units, _) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let program = PlanProgram::compile(&fz, &wh, &units, &roots);
        let total_nodes: usize = ds.plans.iter().map(|p| p.node_count()).sum();
        assert_eq!(program.num_nodes(), total_nodes);
        // The whole point: far fewer gemm groups than nodes.
        assert!(
            program.num_steps() * 4 < total_nodes,
            "{} steps for {} nodes — wavefronts are not batching",
            program.num_steps(),
            total_nodes
        );
    }

    #[test]
    fn empty_batch_compiles_and_predicts_nothing() {
        let (_, fz, wh, units, codec) = setup();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &[]);
        assert_eq!(program.num_plans(), 0);
        assert!(program.predict_roots(&units, &codec).is_empty());
    }

    #[test]
    fn engine_dispatch_agrees_between_paths() {
        let (ds, fz, wh, units, codec) = setup();
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        for caps in [None, Some(&caps)] {
            let a = predict_plans_with(InferEngine::Classes, &units, &fz, &wh, &codec, caps, &plans);
            let b = predict_plans_with(
                InferEngine::Program { threads: 1 },
                &units,
                &fz,
                &wh,
                &codec,
                caps,
                &plans,
            );
            for (x, y) in a.iter().zip(&b) {
                let rel = (x - y).abs() / (1.0 + x.abs());
                assert!(rel < 1e-5, "classes {x} vs program {y}");
            }
        }
    }

    #[test]
    fn levels_partition_steps_in_dependency_order() {
        let (ds, fz, wh, units, _) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let program = PlanProgram::compile(&fz, &wh, &units, &roots);
        // Levels tile the step list exactly, in order (compile emits step
        // ids sequentially).
        let flat: Vec<u32> = program.levels.iter().flatten().copied().collect();
        assert_eq!(flat, (0..program.num_steps() as u32).collect::<Vec<_>>());
        assert!(program.levels.iter().all(|l| !l.is_empty()), "empty level");
        assert!(program.num_levels() >= 2, "multi-operator plans need >= 2 levels");
        // Every child row referenced by a level's steps is produced by a
        // step of an earlier level — the property run_parallel's safety
        // argument rests on.
        let mut produced_before: Vec<std::collections::HashSet<usize>> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for level in &program.levels {
            produced_before.push(seen.clone());
            for &id in level {
                seen.extend(program.steps[id as usize].rows.iter().copied());
            }
        }
        for (l, level) in program.levels.iter().enumerate() {
            for &id in level {
                for &c in &program.steps[id as usize].child_rows {
                    assert!(
                        produced_before[l].contains(&c),
                        "level {l} reads row {c} not produced by an earlier level"
                    );
                }
            }
        }
    }

    #[test]
    fn run_parallel_is_bit_identical_across_thread_counts() {
        let (ds, fz, wh, units, codec) = setup();
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        let base_roots = program.predict_roots(&units, &codec);
        let base_all = program.predict_all(&units, &codec);
        let base_clamped = program.predict_roots_clamped(&units, &codec, &caps);
        for threads in [2, 3, 4, 8, 64] {
            assert_eq!(
                program.predict_roots_threaded(&units, &codec, threads),
                base_roots,
                "{threads} threads: roots differ"
            );
            assert_eq!(
                program.predict_all_threaded(&units, &codec, threads),
                base_all,
                "{threads} threads: per-operator predictions differ"
            );
            assert_eq!(
                program.predict_roots_clamped_threaded(&units, &codec, &caps, threads),
                base_clamped,
                "{threads} threads: clamped roots differ"
            );
        }
    }

    #[test]
    fn parallel_workers_reach_zero_steady_state_allocation() {
        let (ds, fz, wh, units, codec) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        // A private executor (rather than the global one) so concurrent
        // tests cannot perturb the pooled-buffer observation.
        let exec = Executor::new(3);
        // Warm-up run grows every resident worker's pool to its
        // high-water mark.
        program.run_on(&units, &exec, 4);
        let first = program.decode_roots(&codec);
        let pooled = exec.pooled_buffers();
        assert!(pooled > 0, "workers must pool buffers");
        // Steady state: repeated runs neither grow nor leak any pool, and
        // reuse is exact (every take is matched by a give).
        for _ in 0..3 {
            program.run_on(&units, &exec, 4);
            assert_eq!(program.decode_roots(&codec), first, "stale routing between parallel runs");
            assert_eq!(exec.pooled_buffers(), pooled, "worker pools changed in steady state");
        }
    }

    #[test]
    fn oversubscribed_threads_fall_back_cleanly() {
        let (ds, fz, wh, units, codec) = setup();
        // A plan whose levels are all single steps (e.g. a linear chain):
        // any thread count degrades to the sequential path (no dispatch,
        // no barrier, no resident workers woken).
        let mut program = ds
            .plans
            .iter()
            .map(|p| PlanProgram::compile(&fz, &wh, &units, &[&p.root]))
            .find(|prog| prog.levels.iter().all(|l| l.len() == 1))
            .expect("some plan compiles to single-step levels");
        let one = program.predict_roots(&units, &codec);
        let exec = Executor::new(0);
        program.run_on(&units, &exec, 8);
        let many = program.decode_roots(&codec);
        assert_eq!(one, many);
        let stats = exec.stats();
        assert_eq!(stats.runs, 0, "fallback must not dispatch to the executor");
        assert_eq!(stats.resident_workers, 0, "fallback must not spawn resident workers");
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn mismatched_units_panic_instead_of_deadlocking_workers() {
        let (ds, fz, wh, units, codec) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        // A unit set with the same output width (so the cheap width check
        // passes) but different per-family input dims: the shape assert
        // fires *inside worker threads*. The poison protocol must convert
        // that into this panic on the caller, not a barrier deadlock.
        let other = Dataset::generate(Workload::TpcDs, 1.0, 8, 3);
        let fz2 = Featurizer::new(&other.catalog);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let units2 = UnitSet::new(&QppConfig::tiny(), &fz2, &mut rng);
        assert_eq!(units2.out_size(), units.out_size(), "width check must pass");
        let _ = program.predict_roots_threaded(&units2, &codec, 4);
    }

    /// The executor's panic contract: a panic whose step lands only in a
    /// *resident* worker's round-robin share (never the caller's) must
    /// still reach the caller with its original payload — and must leave
    /// the parked pool serviceable for the next run.
    #[test]
    fn worker_only_panic_preserves_its_payload() {
        // Two workers, one level of two steps: the caller (worker 0)
        // takes id 0, the resident worker takes id 1 — which panics.
        let exec = Executor::new(1);
        let levels = vec![vec![0u32, 1u32]];
        let mut workers = [(), ()];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_levels_parallel_with(&exec, &levels, false, &mut workers, &|(), _pool, id| {
                if id == 1 {
                    panic!("step {id} exploded with a diagnostic message");
                }
            });
        }));
        let payload = result.expect_err("the worker panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("panic carries its message");
        assert!(
            msg.contains("step 1 exploded with a diagnostic message"),
            "caller observed `{msg}` instead of the original payload"
        );
        // The poisoned run must not kill the resident worker: the same
        // pool serves the next run.
        let hits = std::sync::atomic::AtomicUsize::new(0);
        run_levels_parallel_with(&exec, &levels, false, &mut workers, &|(), _pool, _id| {
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 2, "pool dead after poison");
    }

    #[test]
    fn engine_thread_accessors() {
        assert_eq!(InferEngine::parse("program"), Some(InferEngine::Program { threads: 1 }));
        assert_eq!(InferEngine::parse("classes"), Some(InferEngine::Classes));
        assert_eq!(InferEngine::parse("wavefront"), None);
        assert_eq!(InferEngine::default(), InferEngine::Program { threads: 1 });
        assert_eq!(InferEngine::Classes.threads(), 1);
        assert_eq!(InferEngine::Program { threads: 0 }.threads(), 1);
        assert_eq!(
            InferEngine::Program { threads: 1 }.with_threads(4),
            InferEngine::Program { threads: 4 }
        );
        assert_eq!(InferEngine::Classes.with_threads(4), InferEngine::Classes);
        assert_eq!(InferEngine::Program { threads: 4 }.name(), "program");
    }
}
