//! The serving engine: compiled, wavefront-batched inference over
//! heterogeneous plan batches.
//!
//! Training-time evaluation ([`crate::tree::TreeBatch`]) can only batch
//! *structurally identical* plans (§5.1.1's equivalence classes), which is
//! the right granularity for unbiased gradients but degenerates on a
//! realistic serving mix: most classes are singletons, so every operator of
//! every plan costs one tiny gemm plus an [`qpp_nn::MlpCache`] allocation
//! it never uses. A [`PlanProgram`] instead *compiles* an arbitrary batch
//! of plans into **wavefronts**: all nodes of all plans are keyed by
//! `(height-from-leaf, OpKind)` and each key becomes one step executing a
//! single gemm per operator family over every plan in the batch,
//! regardless of tree shape. Child outputs
//! are routed between wavefronts with row gather/scatter into preallocated
//! buffers, and layer activations come from a [`qpp_nn::BufferPool`] — the
//! hot path performs no per-node allocation.
//!
//! Scheduling by height from the leaves is sound because a node at height
//! `h` is `1 + max(child heights)`, so every child sits at a strictly
//! smaller height and its output row is written before the parent's
//! wavefront runs. The arithmetic per node is *identical* to the
//! equivalence-class path — same whitened features, same unit weights, same
//! row-major kernels — only the grouping of rows into gemm calls changes,
//! and a row of `X·W` depends on no other row. The differential suite
//! (`tests/infer_differential.rs`) holds the two engines to within `1e-5`
//! relative on every plan, clamped and unclamped.

use crate::config::TargetCodec;
use crate::tree::RatioCaps;
use crate::unit::UnitSet;
use qpp_nn::{BufferPool, Matrix};
use qpp_plansim::features::{Featurizer, Whitener};
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::{Plan, PlanNode};
use std::collections::BTreeMap;

/// Which inference engine answers a prediction request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferEngine {
    /// Per-equivalence-class [`crate::tree::TreeBatch`] evaluation (the
    /// training-time data layout; §5.1.1 batching only).
    Classes,
    /// Compiled wavefront [`PlanProgram`] evaluation (the serving layout).
    Program,
}

impl InferEngine {
    /// Parses the CLI spelling (`classes` | `program`).
    pub fn parse(s: &str) -> Option<InferEngine> {
        match s {
            "classes" => Some(InferEngine::Classes),
            "program" => Some(InferEngine::Program),
            _ => None,
        }
    }

    /// Display name (the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            InferEngine::Classes => "classes",
            InferEngine::Program => "program",
        }
    }
}

/// Maximum rows per compiled step. Wavefronts larger than this are split
/// into row chunks so each gemm's working set (input chunk, activation
/// buffers, one unit's weights) stays cache-resident — measured on the
/// `infer_throughput` bench, monolithic several-hundred-row gemms run up
/// to ~2x slower per row than cache-sized ones on the same kernel.
const STEP_CHUNK_ROWS: usize = 32;

/// One wavefront step: every node (across all plans) at one
/// `(height, OpKind)` key, executed as a single gemm (large wavefronts
/// are split into [`STEP_CHUNK_ROWS`]-row chunks).
struct Step {
    kind: OpKind,
    /// Global output-buffer row of each member node.
    rows: Vec<usize>,
    /// Global rows of each member's children, node-major
    /// (`child_rows[i * arity + j]` is member `i`'s `j`-th child).
    child_rows: Vec<usize>,
    arity: usize,
    /// Width of the feature prefix of `input`.
    feat_width: usize,
    /// Preallocated input, `members × in_dim`. Feature columns are filled
    /// at compile time (features are batch-invariant); child columns are
    /// overwritten by the gather on every run.
    input: Matrix,
}

/// Per-plan bookkeeping for reading results back out of the flat output
/// buffer (and for the clamped envelope walk).
struct PlanSlot {
    /// First global output row of this plan; post-order position `k` lives
    /// at row `base + k` and the root at `base + len - 1`.
    base: usize,
    /// Number of positions (nodes) in the plan.
    len: usize,
    /// Flat post-order lowering (plan-local child lists, heights).
    lowering: crate::lower::Lowering,
    /// Operator family per position (for envelope cap lookups).
    kinds: Vec<OpKind>,
}

/// A compiled inference program over a heterogeneous batch of plans.
///
/// Compile once per batch with [`PlanProgram::compile`], then run any
/// number of times against unit sets of the same shape; all buffers are
/// preallocated at compile time and reused across runs.
pub struct PlanProgram {
    steps: Vec<Step>,
    plans: Vec<PlanSlot>,
    /// `total_nodes × out_w`; row `r` holds node `r`'s `(latency ⌢ data)`.
    outputs: Matrix,
    pool: BufferPool,
    out_w: usize,
    /// Fingerprint of the fitted state this program was compiled against
    /// (`None` for programs compiled directly via [`PlanProgram::compile`];
    /// stamped by [`crate::QppNet::compile_program`] so a refit — or a
    /// different model — invalidates the program instead of silently
    /// serving stale features).
    fingerprint: Option<u64>,
}

impl PlanProgram {
    /// Compiles `roots` into a wavefront schedule against the fitted
    /// model's shape (`units` sizes the routing buffers; `featurizer` and
    /// `whitener` produce the same whitened features the training path
    /// uses).
    ///
    /// # Panics
    /// Panics if a node's feature size disagrees with its unit's input
    /// dimension (a featurizer/model mismatch).
    pub fn compile(
        featurizer: &Featurizer,
        whitener: &Whitener,
        units: &UnitSet,
        roots: &[&PlanNode],
    ) -> PlanProgram {
        let out_w = units.out_size();

        struct Draft {
            kind: OpKind,
            rows: Vec<usize>,
            child_rows: Vec<usize>,
            /// Whitened features of all members, one `feat_width` run per
            /// member (flat: one allocation per draft, not per node).
            feat_data: Vec<f32>,
            feat_width: usize,
        }
        // BTreeMap keyed by (height, family index): iteration order IS the
        // execution order — heights ascending, families in stable order.
        let mut drafts: BTreeMap<(usize, usize), Draft> = BTreeMap::new();
        let mut plans = Vec::with_capacity(roots.len());
        let mut total_nodes = 0usize;
        let mut scratch = Vec::new();

        for root in roots {
            let nodes = root.postorder();
            let lowering = crate::lower::lower(root);
            let base = total_nodes;
            total_nodes += nodes.len();

            for (k, node) in nodes.iter().enumerate() {
                let kind = node.op.kind();
                // Hard assert: plans can arrive from unvalidated JSON (the
                // CLI's `predict --input`), and a wrong arity here would
                // shift every later member's child rows. Compilation runs
                // once per batch, so the check costs nothing that matters.
                assert_eq!(
                    lowering.children_of(k).len(),
                    kind.arity(),
                    "malformed plan: {kind:?} node with {} children (arity {})",
                    lowering.children_of(k).len(),
                    kind.arity()
                );
                whitener.features_into(featurizer, node, &mut scratch);
                let draft =
                    drafts.entry((lowering.height_of(k), kind.index())).or_insert_with(|| Draft {
                        kind,
                        rows: Vec::new(),
                        child_rows: Vec::new(),
                        feat_data: Vec::new(),
                        feat_width: scratch.len(),
                    });
                assert_eq!(scratch.len(), draft.feat_width, "inconsistent feature size for {kind:?}");
                draft.rows.push(base + k);
                draft.child_rows.extend(lowering.children_of(k).iter().map(|&c| base + c));
                draft.feat_data.extend_from_slice(&scratch);
            }

            plans.push(PlanSlot {
                base,
                len: nodes.len(),
                kinds: nodes.iter().map(|n| n.op.kind()).collect(),
                lowering,
            });
        }

        let mut steps = Vec::new();
        for draft in drafts.into_values() {
            let arity = draft.kind.arity();
            let feat_width = draft.feat_width;
            let in_dim = feat_width + arity * out_w;
            assert_eq!(
                in_dim,
                units.unit(draft.kind).in_dim(),
                "feature/model shape mismatch for {:?}",
                draft.kind
            );
            // Split oversized wavefronts into cache-sized row chunks: the
            // row-major gemm kernel is fastest when one chunk's input,
            // output and the unit's layer weights stay cache-resident, and
            // chunking changes nothing semantically (each output row of
            // `X·W` depends only on its own input row).
            for (c, rows) in draft.rows.chunks(STEP_CHUNK_ROWS).enumerate() {
                let members = rows.len();
                let base = c * STEP_CHUNK_ROWS;
                let mut input = Matrix::zeros(members, in_dim);
                for i in 0..members {
                    let f = &draft.feat_data[(base + i) * feat_width..(base + i + 1) * feat_width];
                    input.row_mut(i)[..feat_width].copy_from_slice(f);
                }
                steps.push(Step {
                    kind: draft.kind,
                    rows: rows.to_vec(),
                    child_rows: draft.child_rows[base * arity..(base + members) * arity].to_vec(),
                    arity,
                    feat_width,
                    input,
                });
            }
        }

        PlanProgram {
            steps,
            plans,
            outputs: Matrix::zeros(total_nodes, out_w),
            pool: BufferPool::new(),
            out_w,
            fingerprint: None,
        }
    }

    /// Stamps the fitted-state fingerprint this program was compiled
    /// against (see [`PlanProgram::fingerprint`]).
    pub(crate) fn stamp_fingerprint(&mut self, fingerprint: u64) {
        self.fingerprint = Some(fingerprint);
    }

    /// The fitted-state fingerprint stamped at compile time, if any.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// Number of plans in the compiled batch.
    pub fn num_plans(&self) -> usize {
        self.plans.len()
    }

    /// Total operator nodes across all plans.
    pub fn num_nodes(&self) -> usize {
        self.outputs.rows()
    }

    /// Number of wavefront steps — i.e. gemm calls per unit-layer — the
    /// schedule executes. The per-class path would execute one gemm per
    /// (equivalence class, position) instead.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Executes the schedule bottom-up, filling the output buffer.
    fn run(&mut self, units: &UnitSet) {
        assert_eq!(
            units.out_size(),
            self.out_w,
            "unit set output width {} does not match compiled width {}",
            units.out_size(),
            self.out_w
        );
        let out_w = self.out_w;
        let (steps, outputs, pool) = (&mut self.steps, &mut self.outputs, &mut self.pool);
        for step in steps.iter_mut() {
            // Route child outputs (written by earlier wavefronts) into the
            // child columns of this step's input.
            if step.arity > 0 {
                let fw = step.feat_width;
                for i in 0..step.rows.len() {
                    for j in 0..step.arity {
                        let src = step.child_rows[i * step.arity + j];
                        let start = fw + j * out_w;
                        step.input.row_mut(i)[start..start + out_w]
                            .copy_from_slice(outputs.row(src));
                    }
                }
            }
            let out = units.unit(step.kind).forward_pooled(&step.input, pool);
            out.scatter_rows_into(&step.rows, outputs);
            pool.give(out);
        }
    }

    /// Decoded root-latency predictions (milliseconds), one per plan, in
    /// the order the plans were compiled.
    pub fn predict_roots(&mut self, units: &UnitSet, codec: &TargetCodec) -> Vec<f64> {
        self.run(units);
        self.plans
            .iter()
            .map(|p| codec.decode(self.outputs.get(p.base + p.len - 1, 0)))
            .collect()
    }

    /// Decoded latency predictions for every position of every plan
    /// (`result[plan][position]`, post order, milliseconds).
    ///
    /// Note the index order differs from
    /// [`crate::tree::TreeBatch::predict_all`] (`[position][plan]`): a
    /// heterogeneous batch has no shared position axis.
    pub fn predict_all(&mut self, units: &UnitSet, codec: &TargetCodec) -> Vec<Vec<f64>> {
        self.run(units);
        self.plans
            .iter()
            .map(|p| {
                (p.base..p.base + p.len).map(|r| codec.decode(self.outputs.get(r, 0))).collect()
            })
            .collect()
    }

    /// Like [`PlanProgram::predict_all`], projected onto the structural
    /// envelope of inclusive latencies — the same monotonicity +
    /// bounded-amplification fold as
    /// [`crate::tree::TreeBatch::predict_all_clamped`].
    pub fn predict_all_clamped(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        caps: &RatioCaps,
    ) -> Vec<Vec<f64>> {
        let mut all = self.predict_all(units, codec);
        for (slot, preds) in self.plans.iter().zip(&mut all) {
            // Post order puts children before parents, so clamped child
            // values feed the parent's envelope exactly as in TreeBatch.
            for k in 0..slot.len {
                let kids = slot.lowering.children_of(k);
                if kids.is_empty() {
                    continue;
                }
                let max_child = kids.iter().map(|&c| preds[c]).fold(0.0f64, f64::max);
                let cap = caps.cap(slot.kinds[k], max_child);
                let (lo, hi) = (max_child, max_child * cap.max(1.0));
                preds[k] = preds[k].clamp(lo, hi.max(lo));
            }
        }
        all
    }

    /// Root predictions under the structural envelope (see
    /// [`PlanProgram::predict_all_clamped`]).
    pub fn predict_roots_clamped(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        caps: &RatioCaps,
    ) -> Vec<f64> {
        self.predict_all_clamped(units, codec, caps)
            .into_iter()
            .map(|per_plan| *per_plan.last().expect("non-empty plan"))
            .collect()
    }
}

/// Predicts root latencies (milliseconds) for `plans` through the chosen
/// engine — the single dispatch point behind [`crate::QppNet`]'s
/// prediction API and the `qpp predict` CLI.
pub fn predict_plans_with(
    engine: InferEngine,
    units: &UnitSet,
    featurizer: &Featurizer,
    whitener: &Whitener,
    codec: &TargetCodec,
    ratio_caps: Option<&RatioCaps>,
    plans: &[&Plan],
) -> Vec<f64> {
    match engine {
        InferEngine::Classes => {
            crate::train::predict_plans(units, featurizer, whitener, codec, ratio_caps, plans)
        }
        InferEngine::Program => {
            let roots: Vec<&PlanNode> = plans.iter().map(|p| &p.root).collect();
            let mut program = PlanProgram::compile(featurizer, whitener, units, &roots);
            match ratio_caps {
                Some(caps) => program.predict_roots_clamped(units, codec, caps),
                None => program.predict_roots(units, codec),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{QppConfig, TargetTransform};
    use crate::tree::TreeBatch;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;
    use rand::SeedableRng;

    fn setup() -> (Dataset, Featurizer, Whitener, UnitSet, TargetCodec) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 32, 17);
        let fz = Featurizer::new(&ds.catalog);
        let wh = Whitener::fit(&fz, ds.plans.iter());
        let cfg = QppConfig::tiny();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let units = UnitSet::new(&cfg, &fz, &mut rng);
        let codec = TargetCodec::fit(TargetTransform::Log1p, ds.plans.iter().map(|p| p.latency_ms()));
        (ds, fz, wh, units, codec)
    }

    #[test]
    fn heterogeneous_batch_matches_per_plan_tree_batches() {
        let (ds, fz, wh, units, codec) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        assert_eq!(program.num_plans(), ds.plans.len());
        let program_preds = program.predict_roots(&units, &codec);

        for (i, plan) in ds.plans.iter().enumerate() {
            let tb = TreeBatch::build(&fz, &wh, &codec, &[&plan.root]);
            let single = tb.predict_roots(&units, &codec)[0];
            let rel = (single - program_preds[i]).abs() / (1.0 + single.abs());
            assert!(rel < 1e-5, "plan {i}: tree {single} vs program {}", program_preds[i]);
        }
    }

    #[test]
    fn per_operator_predictions_match_tree_batch() {
        let (ds, fz, wh, units, codec) = setup();
        let plan = ds.plans.iter().max_by_key(|p| p.node_count()).unwrap();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &[&plan.root]);
        let program_all = program.predict_all(&units, &codec);
        let tb = TreeBatch::build(&fz, &wh, &codec, &[&plan.root]);
        let tree_all = tb.predict_all(&units, &codec);
        assert_eq!(program_all[0].len(), tree_all.len());
        for (k, per_pos) in tree_all.iter().enumerate() {
            let rel = (per_pos[0] - program_all[0][k]).abs() / (1.0 + per_pos[0].abs());
            assert!(rel < 1e-5, "position {k}");
        }
    }

    #[test]
    fn clamped_predictions_match_tree_batch() {
        let (ds, fz, wh, units, codec) = setup();
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        let program_preds = program.predict_roots_clamped(&units, &codec, &caps);
        for (i, plan) in ds.plans.iter().enumerate() {
            let tb = TreeBatch::build(&fz, &wh, &codec, &[&plan.root]);
            let single = tb.predict_roots_clamped(&units, &codec, &caps)[0];
            let rel = (single - program_preds[i]).abs() / (1.0 + single.abs());
            assert!(rel < 1e-5, "plan {i}: tree {single} vs program {}", program_preds[i]);
        }
    }

    #[test]
    fn repeated_runs_are_stable_and_allocation_reusing() {
        let (ds, fz, wh, units, codec) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().take(8).map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        let first = program.predict_roots(&units, &codec);
        let second = program.predict_roots(&units, &codec);
        assert_eq!(first, second, "stale child routing between runs");
    }

    #[test]
    fn wavefronts_batch_across_plans() {
        let (ds, fz, wh, units, _) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let program = PlanProgram::compile(&fz, &wh, &units, &roots);
        let total_nodes: usize = ds.plans.iter().map(|p| p.node_count()).sum();
        assert_eq!(program.num_nodes(), total_nodes);
        // The whole point: far fewer gemm groups than nodes.
        assert!(
            program.num_steps() * 4 < total_nodes,
            "{} steps for {} nodes — wavefronts are not batching",
            program.num_steps(),
            total_nodes
        );
    }

    #[test]
    fn empty_batch_compiles_and_predicts_nothing() {
        let (_, fz, wh, units, codec) = setup();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &[]);
        assert_eq!(program.num_plans(), 0);
        assert!(program.predict_roots(&units, &codec).is_empty());
    }

    #[test]
    fn engine_dispatch_agrees_between_paths() {
        let (ds, fz, wh, units, codec) = setup();
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        for caps in [None, Some(&caps)] {
            let a = predict_plans_with(InferEngine::Classes, &units, &fz, &wh, &codec, caps, &plans);
            let b = predict_plans_with(InferEngine::Program, &units, &fz, &wh, &codec, caps, &plans);
            for (x, y) in a.iter().zip(&b) {
                let rel = (x - y).abs() / (1.0 + x.abs());
                assert!(rel < 1e-5, "classes {x} vs program {y}");
            }
        }
    }
}
