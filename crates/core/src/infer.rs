//! The serving engine: compiled, wavefront-batched inference over
//! heterogeneous plan batches.
//!
//! Training-time evaluation ([`crate::tree::TreeBatch`]) can only batch
//! *structurally identical* plans (§5.1.1's equivalence classes), which is
//! the right granularity for unbiased gradients but degenerates on a
//! realistic serving mix: most classes are singletons, so every operator of
//! every plan costs one tiny gemm plus an [`qpp_nn::MlpCache`] allocation
//! it never uses. A [`PlanProgram`] instead *compiles* an arbitrary batch
//! of plans into **wavefronts**: all nodes of all plans are keyed by
//! `(height-from-leaf, OpKind)` and each key becomes one step executing a
//! single gemm per operator family over every plan in the batch,
//! regardless of tree shape. Child outputs
//! are routed between wavefronts with row gather/scatter into preallocated
//! buffers, and layer activations come from a [`qpp_nn::BufferPool`] — the
//! hot path performs no per-node allocation.
//!
//! Scheduling by height from the leaves is sound because a node at height
//! `h` is `1 + max(child heights)`, so every child sits at a strictly
//! smaller height and its output row is written before the parent's
//! wavefront runs. The arithmetic per node is *identical* to the
//! equivalence-class path — same whitened features, same unit weights, same
//! row-major kernels — only the grouping of rows into gemm calls changes,
//! and a row of `X·W` depends on no other row. The differential suite
//! (`tests/infer_differential.rs`) holds the two engines to within `1e-5`
//! relative on every plan, clamped and unclamped.
//!
//! ## Multicore execution
//!
//! Wavefront rows are embarrassingly parallel: the steps of one height
//! level read only rows written at strictly lower heights and write
//! disjoint row ranges of the shared output buffer, so
//! [`PlanProgram::run_parallel`] distributes each level's cache-sized
//! 32-row steps across a scoped worker pool (std threads only). Every worker owns its own [`qpp_nn::BufferPool`] and gather
//! scratch, so the hot path stays lock-free and allocation-free in steady
//! state, and a level barrier is the only synchronization. Results are
//! **bit-identical at any thread count** (see `DESIGN.md` §7 for the
//! determinism contract): the partition grain is the compile-time step, so
//! every node is computed by the same kernel on the same input rows no
//! matter which worker runs it. Compile once, then serve:
//!
//! ```
//! use qppnet::{QppConfig, QppNet};
//! use qpp_plansim::prelude::*;
//!
//! let ds = Dataset::generate(Workload::TpcH, 1.0, 24, 3);
//! let mut model = QppNet::new(QppConfig { epochs: 1, ..QppConfig::tiny() }, &ds.catalog);
//! model.fit(&ds.plans.iter().take(16).collect::<Vec<_>>());
//!
//! // Compile the serving batch once; run it on as many cores as the host
//! // offers. Thread count never changes the answer.
//! let plans: Vec<&Plan> = ds.plans.iter().collect();
//! let mut program = model.compile_program(&plans);
//! let serial = model.predict_compiled(&mut program);
//! let threaded = model.predict_compiled_with(&mut program, 4);
//! assert_eq!(serial, threaded);
//! ```

use crate::config::TargetCodec;
use crate::tree::RatioCaps;
use crate::unit::UnitSet;
use qpp_nn::{BufferPool, Matrix};
use qpp_plansim::features::{Featurizer, Whitener};
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::{Plan, PlanNode};
use std::collections::BTreeMap;

/// Which inference engine answers a prediction request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferEngine {
    /// Per-equivalence-class [`crate::tree::TreeBatch`] evaluation (the
    /// training-time data layout; §5.1.1 batching only).
    Classes,
    /// Compiled wavefront [`PlanProgram`] evaluation (the serving layout),
    /// executed on `threads` worker threads (`1` = the sequential path;
    /// results are bit-identical at any thread count).
    Program {
        /// Worker threads for [`PlanProgram::run_parallel`].
        threads: usize,
    },
}

impl InferEngine {
    /// Parses the CLI spelling (`classes` | `program`); `program` defaults
    /// to single-threaded execution (compose with
    /// [`InferEngine::with_threads`] for the CLI's `--threads` flag).
    pub fn parse(s: &str) -> Option<InferEngine> {
        match s {
            "classes" => Some(InferEngine::Classes),
            "program" => Some(InferEngine::Program { threads: 1 }),
            _ => None,
        }
    }

    /// Display name (the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            InferEngine::Classes => "classes",
            InferEngine::Program { .. } => "program",
        }
    }

    /// Worker threads this engine evaluates with (always 1 for the
    /// per-class path, which has no parallel mode).
    pub fn threads(self) -> usize {
        match self {
            InferEngine::Classes => 1,
            InferEngine::Program { threads } => threads.max(1),
        }
    }

    /// This engine with its thread count replaced (no-op for
    /// [`InferEngine::Classes`]).
    pub fn with_threads(self, threads: usize) -> InferEngine {
        match self {
            InferEngine::Classes => InferEngine::Classes,
            InferEngine::Program { .. } => InferEngine::Program { threads: threads.max(1) },
        }
    }
}

impl Default for InferEngine {
    /// The serving default: the compiled wavefront engine on one thread.
    fn default() -> InferEngine {
        InferEngine::Program { threads: 1 }
    }
}

/// Maximum rows per compiled step. Wavefronts larger than this are split
/// into row chunks so each gemm's working set (input chunk, activation
/// buffers, one unit's weights) stays cache-resident — measured on the
/// `infer_throughput` bench, monolithic several-hundred-row gemms run up
/// to ~2x slower per row than cache-sized ones on the same kernel.
pub(crate) const STEP_CHUNK_ROWS: usize = 32;

/// One wavefront step: every node (across all plans) at one
/// `(height, OpKind)` key, executed as a single gemm (large wavefronts
/// are split into [`STEP_CHUNK_ROWS`]-row chunks).
///
/// Shared between the batch-compiled [`PlanProgram`] and the incremental
/// [`crate::stream::ProgramBuilder`] (which additionally grows/shrinks a
/// step's member set in place — `input` is then allocated with
/// [`Matrix::with_row_capacity`] so membership churn stays allocation-free).
pub(crate) struct Step {
    pub(crate) kind: OpKind,
    /// Global output-buffer row of each member node.
    pub(crate) rows: Vec<usize>,
    /// Global rows of each member's children, node-major
    /// (`child_rows[i * arity + j]` is member `i`'s `j`-th child).
    pub(crate) child_rows: Vec<usize>,
    pub(crate) arity: usize,
    /// Width of the feature prefix of `input`.
    pub(crate) feat_width: usize,
    /// Preallocated input, `members × in_dim`. Feature columns are filled
    /// at compile/admit time (features are batch-invariant); child columns
    /// are overwritten by the gather on every run.
    pub(crate) input: Matrix,
}

/// Per-plan bookkeeping for reading results back out of the flat output
/// buffer (and for the clamped envelope walk).
struct PlanSlot {
    /// First global output row of this plan; post-order position `k` lives
    /// at row `base + k` and the root at `base + len - 1`.
    base: usize,
    /// Number of positions (nodes) in the plan.
    len: usize,
    /// Flat post-order lowering (plan-local child lists, heights).
    lowering: crate::lower::Lowering,
    /// Operator family per position (for envelope cap lookups).
    kinds: Vec<OpKind>,
}

/// A compiled inference program over a heterogeneous batch of plans.
///
/// Compile once per batch with [`PlanProgram::compile`], then run any
/// number of times against unit sets of the same shape; all buffers are
/// preallocated at compile time and reused across runs. Execution is
/// single-threaded through [`PlanProgram::predict_roots`] and friends, or
/// multicore through [`PlanProgram::run_parallel`] and the `_threaded`
/// prediction variants — thread count never changes the results.
pub struct PlanProgram {
    steps: Vec<Step>,
    /// Step ids grouped into one height level each, ascending: all steps
    /// of `levels[l]` read only output rows written by levels `< l`, which
    /// is what makes a level's steps safe to run concurrently. Id lists
    /// (rather than ranges) so the same executors serve the incremental
    /// engine, whose step slab is not level-contiguous.
    levels: Vec<Vec<u32>>,
    plans: Vec<PlanSlot>,
    /// `total_nodes × out_w`; row `r` holds node `r`'s `(latency ⌢ data)`.
    outputs: Matrix,
    pool: BufferPool,
    /// One pool per worker for [`PlanProgram::run_parallel`], grown lazily
    /// to the requested thread count and kept warm across runs so
    /// steady-state parallel serving allocates nothing per worker.
    worker_pools: Vec<BufferPool>,
    out_w: usize,
    /// Fingerprint of the fitted state this program was compiled against
    /// (`None` for programs compiled directly via [`PlanProgram::compile`];
    /// stamped by [`crate::QppNet::compile_program`] so a refit — or a
    /// different model — invalidates the program instead of silently
    /// serving stale features).
    fingerprint: Option<u64>,
}

impl PlanProgram {
    /// Compiles `roots` into a wavefront schedule against the fitted
    /// model's shape (`units` sizes the routing buffers; `featurizer` and
    /// `whitener` produce the same whitened features the training path
    /// uses).
    ///
    /// # Panics
    /// Panics if a node's feature size disagrees with its unit's input
    /// dimension (a featurizer/model mismatch).
    pub fn compile(
        featurizer: &Featurizer,
        whitener: &Whitener,
        units: &UnitSet,
        roots: &[&PlanNode],
    ) -> PlanProgram {
        let out_w = units.out_size();

        struct Draft {
            kind: OpKind,
            rows: Vec<usize>,
            child_rows: Vec<usize>,
            /// Whitened features of all members, one `feat_width` run per
            /// member (flat: one allocation per draft, not per node).
            feat_data: Vec<f32>,
            feat_width: usize,
        }
        // BTreeMap keyed by (height, family index): iteration order IS the
        // execution order — heights ascending, families in stable order.
        let mut drafts: BTreeMap<(usize, usize), Draft> = BTreeMap::new();
        let mut plans = Vec::with_capacity(roots.len());
        let mut total_nodes = 0usize;
        let mut scratch = Vec::new();

        for root in roots {
            let nodes = root.postorder();
            let lowering = crate::lower::lower(root);
            let base = total_nodes;
            total_nodes += nodes.len();

            for (k, node) in nodes.iter().enumerate() {
                let kind = node.op.kind();
                // Hard assert: plans can arrive from unvalidated JSON (the
                // CLI's `predict --input`), and a wrong arity here would
                // shift every later member's child rows. Compilation runs
                // once per batch, so the check costs nothing that matters.
                assert_eq!(
                    lowering.children_of(k).len(),
                    kind.arity(),
                    "malformed plan: {kind:?} node with {} children (arity {})",
                    lowering.children_of(k).len(),
                    kind.arity()
                );
                whitener.features_into(featurizer, node, &mut scratch);
                let draft =
                    drafts.entry((lowering.height_of(k), kind.index())).or_insert_with(|| Draft {
                        kind,
                        rows: Vec::new(),
                        child_rows: Vec::new(),
                        feat_data: Vec::new(),
                        feat_width: scratch.len(),
                    });
                assert_eq!(scratch.len(), draft.feat_width, "inconsistent feature size for {kind:?}");
                draft.rows.push(base + k);
                draft.child_rows.extend(lowering.children_of(k).iter().map(|&c| base + c));
                draft.feat_data.extend_from_slice(&scratch);
            }

            plans.push(PlanSlot {
                base,
                len: nodes.len(),
                kinds: nodes.iter().map(|n| n.op.kind()).collect(),
                lowering,
            });
        }

        let mut steps = Vec::new();
        let mut levels: Vec<Vec<u32>> = Vec::new();
        let mut cur_height = usize::MAX;
        for ((height, _), draft) in drafts {
            if height != cur_height {
                levels.push(Vec::new());
                cur_height = height;
            }
            let arity = draft.kind.arity();
            let feat_width = draft.feat_width;
            let in_dim = feat_width + arity * out_w;
            assert_eq!(
                in_dim,
                units.unit(draft.kind).in_dim(),
                "feature/model shape mismatch for {:?}",
                draft.kind
            );
            // Split oversized wavefronts into cache-sized row chunks: the
            // row-major gemm kernel is fastest when one chunk's input,
            // output and the unit's layer weights stay cache-resident, and
            // chunking changes nothing semantically (each output row of
            // `X·W` depends only on its own input row).
            for (c, rows) in draft.rows.chunks(STEP_CHUNK_ROWS).enumerate() {
                let members = rows.len();
                let base = c * STEP_CHUNK_ROWS;
                let mut input = Matrix::zeros(members, in_dim);
                for i in 0..members {
                    let f = &draft.feat_data[(base + i) * feat_width..(base + i + 1) * feat_width];
                    input.row_mut(i)[..feat_width].copy_from_slice(f);
                }
                steps.push(Step {
                    kind: draft.kind,
                    rows: rows.to_vec(),
                    child_rows: draft.child_rows[base * arity..(base + members) * arity].to_vec(),
                    arity,
                    feat_width,
                    input,
                });
                levels.last_mut().expect("level opened above").push((steps.len() - 1) as u32);
            }
        }

        PlanProgram {
            steps,
            levels,
            plans,
            outputs: Matrix::zeros(total_nodes, out_w),
            pool: BufferPool::new(),
            worker_pools: Vec::new(),
            out_w,
            fingerprint: None,
        }
    }

    /// Stamps the fitted-state fingerprint this program was compiled
    /// against (see [`PlanProgram::fingerprint`]).
    pub(crate) fn stamp_fingerprint(&mut self, fingerprint: u64) {
        self.fingerprint = Some(fingerprint);
    }

    /// The fitted-state fingerprint stamped at compile time, if any.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// Number of plans in the compiled batch.
    pub fn num_plans(&self) -> usize {
        self.plans.len()
    }

    /// Total operator nodes across all plans.
    pub fn num_nodes(&self) -> usize {
        self.outputs.rows()
    }

    /// Number of wavefront steps — i.e. gemm calls per unit-layer — the
    /// schedule executes. The per-class path would execute one gemm per
    /// (equivalence class, position) instead.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of height levels in the schedule. Steps within one level are
    /// mutually independent — this is the parallelism axis of
    /// [`PlanProgram::run_parallel`] (and a barrier count: one
    /// synchronization per level).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    fn check_units_width(&self, units: &UnitSet) {
        assert_eq!(
            units.out_size(),
            self.out_w,
            "unit set output width {} does not match compiled width {}",
            units.out_size(),
            self.out_w
        );
    }

    /// Executes the schedule bottom-up across `threads` worker threads,
    /// filling the output buffer read by the `predict_*` methods.
    ///
    /// Each height level's steps (already split into cache-sized 32-row
    /// chunks at compile time — that chunking is the partition grain) are
    /// dealt round-robin to a scoped worker pool; a barrier separates
    /// levels. Workers are lock-free on the hot path: every step writes a
    /// disjoint set of output rows and reads only rows written at strictly
    /// lower levels, and each worker gathers into scratch taken from its
    /// own persistent [`BufferPool`], so steady-state parallel serving
    /// performs zero allocation per worker.
    ///
    /// **Determinism:** results are bit-identical for every `threads`
    /// value (the differential suite asserts exact equality at 1/2/4/8) —
    /// each node is computed by the same fused kernel on the same input
    /// rows regardless of which worker runs its step; only the assignment
    /// of steps to workers changes. See `DESIGN.md` §7.
    ///
    /// The effective thread count is capped at the widest level's step
    /// count, so small programs (or programs whose wavefronts all fit one
    /// 32-row chunk) fall back to the sequential path instead of paying
    /// thread-spawn and barrier overhead for no available parallelism.
    pub fn run_parallel(&mut self, units: &UnitSet, threads: usize) {
        self.check_units_width(units);
        run_schedule(
            &mut self.steps,
            &self.levels,
            units,
            &mut self.outputs,
            &mut self.pool,
            &mut self.worker_pools,
            self.out_w,
            threads,
        );
    }

    fn decode_roots(&self, codec: &TargetCodec) -> Vec<f64> {
        self.plans
            .iter()
            .map(|p| codec.decode(self.outputs.get(p.base + p.len - 1, 0)))
            .collect()
    }

    /// Folds the structural envelope over decoded per-position latencies,
    /// in place — the same monotonicity + bounded-amplification walk as
    /// [`crate::tree::TreeBatch::predict_all_clamped`]. Post order puts
    /// children before parents, so clamped child values feed the parent's
    /// envelope exactly as in `TreeBatch`.
    fn clamp_envelope(&self, all: &mut [Vec<f64>], caps: &RatioCaps) {
        for (slot, preds) in self.plans.iter().zip(all.iter_mut()) {
            clamp_plan_envelope(preds, &slot.lowering, &slot.kinds, caps);
        }
    }

    /// Decoded root-latency predictions (milliseconds), one per plan, in
    /// the order the plans were compiled.
    pub fn predict_roots(&mut self, units: &UnitSet, codec: &TargetCodec) -> Vec<f64> {
        self.predict_roots_threaded(units, codec, 1)
    }

    /// [`PlanProgram::predict_roots`] on `threads` workers (see
    /// [`PlanProgram::run_parallel`]; results are identical at any thread
    /// count).
    pub fn predict_roots_threaded(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        threads: usize,
    ) -> Vec<f64> {
        self.run_parallel(units, threads);
        self.decode_roots(codec)
    }

    /// Decoded latency predictions for every position of every plan
    /// (`result[plan][position]`, post order, milliseconds).
    ///
    /// Note the index order differs from
    /// [`crate::tree::TreeBatch::predict_all`] (`[position][plan]`): a
    /// heterogeneous batch has no shared position axis.
    pub fn predict_all(&mut self, units: &UnitSet, codec: &TargetCodec) -> Vec<Vec<f64>> {
        self.predict_all_threaded(units, codec, 1)
    }

    /// [`PlanProgram::predict_all`] on `threads` workers.
    pub fn predict_all_threaded(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        self.run_parallel(units, threads);
        self.plans
            .iter()
            .map(|p| {
                (p.base..p.base + p.len).map(|r| codec.decode(self.outputs.get(r, 0))).collect()
            })
            .collect()
    }

    /// Like [`PlanProgram::predict_all`], projected onto the structural
    /// envelope of inclusive latencies — the same monotonicity +
    /// bounded-amplification fold as
    /// [`crate::tree::TreeBatch::predict_all_clamped`].
    pub fn predict_all_clamped(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        caps: &RatioCaps,
    ) -> Vec<Vec<f64>> {
        self.predict_all_clamped_threaded(units, codec, caps, 1)
    }

    /// [`PlanProgram::predict_all_clamped`] on `threads` workers (the
    /// envelope fold itself runs on the calling thread — it is a cheap
    /// sequential walk over decoded scalars).
    pub fn predict_all_clamped_threaded(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        caps: &RatioCaps,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        let mut all = self.predict_all_threaded(units, codec, threads);
        self.clamp_envelope(&mut all, caps);
        all
    }

    /// Root predictions under the structural envelope (see
    /// [`PlanProgram::predict_all_clamped`]).
    pub fn predict_roots_clamped(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        caps: &RatioCaps,
    ) -> Vec<f64> {
        self.predict_roots_clamped_threaded(units, codec, caps, 1)
    }

    /// [`PlanProgram::predict_roots_clamped`] on `threads` workers.
    pub fn predict_roots_clamped_threaded(
        &mut self,
        units: &UnitSet,
        codec: &TargetCodec,
        caps: &RatioCaps,
        threads: usize,
    ) -> Vec<f64> {
        self.predict_all_clamped_threaded(units, codec, caps, threads)
            .into_iter()
            .map(|per_plan| *per_plan.last().expect("non-empty plan"))
            .collect()
    }
}

/// The widest level's step count — the effective parallelism bound of a
/// wavefront schedule (the executors cap worker counts here so schedules
/// with no available parallelism fall back to the sequential path).
pub(crate) fn max_level_width(levels: &[Vec<u32>]) -> usize {
    levels.iter().map(|l| l.len()).max().unwrap_or(0)
}

/// Folds the structural envelope over one plan's decoded per-position
/// latencies, in place — the same monotonicity + bounded-amplification
/// walk as [`crate::tree::TreeBatch::predict_all_clamped`]. Post order
/// puts children before parents, so clamped child values feed the parent's
/// envelope. Shared by [`PlanProgram`] and the incremental builder.
pub(crate) fn clamp_plan_envelope(
    preds: &mut [f64],
    lowering: &crate::lower::Lowering,
    kinds: &[OpKind],
    caps: &RatioCaps,
) {
    for k in 0..preds.len() {
        let kids = lowering.children_of(k);
        if kids.is_empty() {
            continue;
        }
        let max_child = kids.iter().map(|&c| preds[c]).fold(0.0f64, f64::max);
        let cap = caps.cap(kinds[k], max_child);
        let (lo, hi) = (max_child, max_child * cap.max(1.0));
        preds[k] = preds[k].clamp(lo, hi.max(lo));
    }
}

/// Executes a wavefront schedule bottom-up on the calling thread: for each
/// step (levels ascending, in level order) routes child outputs into the
/// step's baked input and runs the unit forward through `pool`. Steps are
/// visited via the level id lists, so the step slab may contain retired
/// (unlisted) entries — the incremental engine relies on this.
pub(crate) fn run_levels_seq(
    steps: &mut [Step],
    levels: &[Vec<u32>],
    units: &UnitSet,
    outputs: &mut Matrix,
    pool: &mut BufferPool,
    out_w: usize,
) {
    for level in levels {
        for &id in level {
            let step = &mut steps[id as usize];
            // Route child outputs (written by earlier wavefronts) into the
            // child columns of this step's input.
            if step.arity > 0 {
                let fw = step.feat_width;
                for i in 0..step.rows.len() {
                    for j in 0..step.arity {
                        let src = step.child_rows[i * step.arity + j];
                        let start = fw + j * out_w;
                        step.input.row_mut(i)[start..start + out_w]
                            .copy_from_slice(outputs.row(src));
                    }
                }
            }
            let out = units.unit(step.kind).forward_pooled(&step.input, pool);
            out.scatter_rows_into(&step.rows, outputs);
            pool.give(out);
        }
    }
}

/// Dispatches a wavefront schedule onto the right executor — the single
/// decision point shared by [`PlanProgram`] and the incremental builder:
/// the thread count is capped at the widest level (no parallelism worth
/// spawning for → the sequential in-place path, touching no worker
/// pools), otherwise `worker_pools` is grown to the effective count and
/// the scoped worker pool runs the levels.
#[allow(clippy::too_many_arguments)] // two call sites; a context struct would just rename these
pub(crate) fn run_schedule(
    steps: &mut [Step],
    levels: &[Vec<u32>],
    units: &UnitSet,
    outputs: &mut Matrix,
    pool: &mut BufferPool,
    worker_pools: &mut Vec<BufferPool>,
    out_w: usize,
    threads: usize,
) {
    let threads = threads.min(max_level_width(levels));
    if threads <= 1 {
        run_levels_seq(steps, levels, units, outputs, pool, out_w);
    } else {
        if worker_pools.len() < threads {
            worker_pools.resize_with(threads, BufferPool::new);
        }
        run_levels_parallel(steps, levels, units, outputs, &mut worker_pools[..threads], out_w);
    }
}

/// Executes a wavefront schedule across one worker per pool in
/// `worker_pools` (the caller participates as worker 0; callers must pass
/// at least two pools and have already handled the `threads <= 1`
/// fallback). Each height level's steps are dealt round-robin; a barrier
/// separates levels. See [`PlanProgram::run_parallel`] for the
/// determinism and poisoning contracts.
pub(crate) fn run_levels_parallel(
    steps: &[Step],
    levels: &[Vec<u32>],
    units: &UnitSet,
    outputs: &mut Matrix,
    worker_pools: &mut [BufferPool],
    out_w: usize,
) {
    let threads = worker_pools.len();
    debug_assert!(threads >= 2, "parallel executor needs >= 2 workers");
    let outputs = SharedRows::new(outputs);
    let barrier = std::sync::Barrier::new(threads);
    let poisoned = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut pools = worker_pools.iter_mut();
        let main_pool = pools.next().expect("threads >= 2");
        for (t, pool) in pools.enumerate() {
            let (outputs, barrier, poisoned) = (&outputs, &barrier, &poisoned);
            scope.spawn(move || {
                worker_loop(
                    t + 1, threads, steps, levels, units, outputs, barrier, poisoned, pool, out_w,
                )
            });
        }
        // The caller participates as worker 0 — `threads` means total
        // active workers, not extra threads.
        worker_loop(
            0, threads, steps, levels, units, &outputs, &barrier, &poisoned, main_pool, out_w,
        );
    });
}

/// A raw-pointer view of the shared output matrix that lets worker threads
/// write disjoint rows without locks.
///
/// Safe Rust cannot express "N threads each mutate a different subset of
/// rows of one matrix", so this view carries the proof obligation instead:
///
/// * every output row belongs to exactly **one** step (compile assigns
///   each node one global row, and a node joins one draft chunk), so two
///   workers never write the same row within a level;
/// * a step only **reads** rows of its members' children, which sit at
///   strictly lower height — written in an earlier level, sequenced by the
///   inter-level barrier (`Barrier::wait` is an acquire/release point);
/// * the view lives only inside [`PlanProgram::run_parallel`]'s scope,
///   which holds the `&mut Matrix` borrow for the view's whole lifetime.
struct SharedRows<'a> {
    ptr: *mut f32,
    rows: usize,
    cols: usize,
    _borrow: std::marker::PhantomData<&'a mut Matrix>,
}

/// SAFETY: see the type-level contract — all row accesses are disjoint or
/// barrier-ordered, so handing the view to multiple threads is sound.
unsafe impl Send for SharedRows<'_> {}
/// SAFETY: as for [`Send`].
unsafe impl Sync for SharedRows<'_> {}

impl<'a> SharedRows<'a> {
    fn new(m: &'a mut Matrix) -> SharedRows<'a> {
        let (rows, cols) = (m.rows(), m.cols());
        SharedRows { ptr: m.as_mut_slice().as_mut_ptr(), rows, cols, _borrow: std::marker::PhantomData }
    }

    /// Reads row `i`.
    ///
    /// # Safety
    /// `i` must have been fully written in an earlier level (a strictly
    /// lower height) and no thread may be writing it concurrently.
    #[inline]
    unsafe fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows, "row {i} out of range for {}x{} shared view", self.rows, self.cols);
        std::slice::from_raw_parts(self.ptr.add(i * self.cols), self.cols)
    }

    /// Overwrites row `i` with `src`.
    ///
    /// # Safety
    /// The caller must be the only thread accessing row `i` in the current
    /// level (each row belongs to exactly one step).
    #[inline]
    unsafe fn write_row(&self, i: usize, src: &[f32]) {
        debug_assert!(i < self.rows, "row {i} out of range for {}x{} shared view", self.rows, self.cols);
        debug_assert_eq!(src.len(), self.cols, "row width mismatch in shared write");
        std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(i * self.cols), self.cols);
    }
}

/// One worker of [`PlanProgram::run_parallel`]: executes its round-robin
/// share (`worker`, `worker + workers`, …) of each level's steps, then
/// waits at the level barrier. Unlike the sequential path — which gathers
/// child rows into the step's own input matrix — workers assemble each
/// step's input in scratch taken from their private pool, so the compiled
/// steps stay shared and immutable across threads. The gemm consumes the
/// exact same input values either way, and scratch has the same shape as
/// the baked input, so the kernel (and its result, bit for bit) is
/// identical to the sequential path's.
///
/// A panic inside a step (e.g. a shape assert against a mismatched unit
/// set) must not strand the other workers at the barrier: each level's
/// work is caught, a shared poison flag is raised, the barrier is still
/// reached, and every worker exits after the wait — the catching worker
/// resumes its unwind so the caller observes the original panic (same
/// message as the sequential path) instead of a deadlocked process.
#[allow(clippy::too_many_arguments)] // one call site; a worker context struct would just rename these
fn worker_loop(
    worker: usize,
    workers: usize,
    steps: &[Step],
    levels: &[Vec<u32>],
    units: &UnitSet,
    outputs: &SharedRows<'_>,
    barrier: &std::sync::Barrier,
    poisoned: &std::sync::atomic::AtomicBool,
    pool: &mut BufferPool,
    out_w: usize,
) {
    use std::sync::atomic::Ordering;
    for level in levels {
        let my_steps = level.iter().skip(worker).step_by(workers).map(|&id| &steps[id as usize]);
        // AssertUnwindSafe: on panic the pool may keep un-given buffers
        // and the output rows of this level may be partially written —
        // the same states a sequential-path panic leaves behind; the
        // unwind is re-raised below, so no caller observes them.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for step in my_steps {
                let out = if step.arity == 0 {
                    // Leaves: the baked feature matrix IS the full input.
                    units.unit(step.kind).forward_pooled(&step.input, pool)
                } else {
                    let members = step.rows.len();
                    let fw = step.feat_width;
                    let mut scratch = pool.take(members, step.input.cols());
                    for i in 0..members {
                        let dst = scratch.row_mut(i);
                        dst[..fw].copy_from_slice(&step.input.row(i)[..fw]);
                        for j in 0..step.arity {
                            let src = step.child_rows[i * step.arity + j];
                            // SAFETY: `src` is a child row — strictly lower
                            // height, fully written in an earlier level and
                            // barrier-sequenced with this read.
                            let child = unsafe { outputs.row(src) };
                            dst[fw + j * out_w..fw + (j + 1) * out_w].copy_from_slice(child);
                        }
                    }
                    let out = units.unit(step.kind).forward_pooled(&scratch, pool);
                    pool.give(scratch);
                    out
                };
                for (k, &r) in step.rows.iter().enumerate() {
                    // SAFETY: each output row belongs to exactly one step,
                    // and this worker owns this step within the current
                    // level.
                    unsafe { outputs.write_row(r, out.row(k)) };
                }
                pool.give(out);
            }
        }));
        if result.is_err() {
            poisoned.store(true, Ordering::Release);
        }
        barrier.wait();
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
        if poisoned.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Predicts root latencies (milliseconds) for `plans` through the chosen
/// engine — the single dispatch point behind [`crate::QppNet`]'s
/// prediction API and the `qpp predict` CLI.
pub fn predict_plans_with(
    engine: InferEngine,
    units: &UnitSet,
    featurizer: &Featurizer,
    whitener: &Whitener,
    codec: &TargetCodec,
    ratio_caps: Option<&RatioCaps>,
    plans: &[&Plan],
) -> Vec<f64> {
    match engine {
        InferEngine::Classes => {
            crate::train::predict_plans(units, featurizer, whitener, codec, ratio_caps, plans)
        }
        InferEngine::Program { threads } => {
            let roots: Vec<&PlanNode> = plans.iter().map(|p| &p.root).collect();
            let mut program = PlanProgram::compile(featurizer, whitener, units, &roots);
            match ratio_caps {
                Some(caps) => program.predict_roots_clamped_threaded(units, codec, caps, threads),
                None => program.predict_roots_threaded(units, codec, threads),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{QppConfig, TargetTransform};
    use crate::tree::TreeBatch;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;
    use rand::SeedableRng;

    fn setup() -> (Dataset, Featurizer, Whitener, UnitSet, TargetCodec) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 32, 17);
        let fz = Featurizer::new(&ds.catalog);
        let wh = Whitener::fit(&fz, ds.plans.iter());
        let cfg = QppConfig::tiny();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let units = UnitSet::new(&cfg, &fz, &mut rng);
        let codec = TargetCodec::fit(TargetTransform::Log1p, ds.plans.iter().map(|p| p.latency_ms()));
        (ds, fz, wh, units, codec)
    }

    #[test]
    fn heterogeneous_batch_matches_per_plan_tree_batches() {
        let (ds, fz, wh, units, codec) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        assert_eq!(program.num_plans(), ds.plans.len());
        let program_preds = program.predict_roots(&units, &codec);

        for (i, plan) in ds.plans.iter().enumerate() {
            let tb = TreeBatch::build(&fz, &wh, &codec, &[&plan.root]);
            let single = tb.predict_roots(&units, &codec)[0];
            let rel = (single - program_preds[i]).abs() / (1.0 + single.abs());
            assert!(rel < 1e-5, "plan {i}: tree {single} vs program {}", program_preds[i]);
        }
    }

    #[test]
    fn per_operator_predictions_match_tree_batch() {
        let (ds, fz, wh, units, codec) = setup();
        let plan = ds.plans.iter().max_by_key(|p| p.node_count()).unwrap();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &[&plan.root]);
        let program_all = program.predict_all(&units, &codec);
        let tb = TreeBatch::build(&fz, &wh, &codec, &[&plan.root]);
        let tree_all = tb.predict_all(&units, &codec);
        assert_eq!(program_all[0].len(), tree_all.len());
        for (k, per_pos) in tree_all.iter().enumerate() {
            let rel = (per_pos[0] - program_all[0][k]).abs() / (1.0 + per_pos[0].abs());
            assert!(rel < 1e-5, "position {k}");
        }
    }

    #[test]
    fn clamped_predictions_match_tree_batch() {
        let (ds, fz, wh, units, codec) = setup();
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        let program_preds = program.predict_roots_clamped(&units, &codec, &caps);
        for (i, plan) in ds.plans.iter().enumerate() {
            let tb = TreeBatch::build(&fz, &wh, &codec, &[&plan.root]);
            let single = tb.predict_roots_clamped(&units, &codec, &caps)[0];
            let rel = (single - program_preds[i]).abs() / (1.0 + single.abs());
            assert!(rel < 1e-5, "plan {i}: tree {single} vs program {}", program_preds[i]);
        }
    }

    #[test]
    fn repeated_runs_are_stable_and_allocation_reusing() {
        let (ds, fz, wh, units, codec) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().take(8).map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        let first = program.predict_roots(&units, &codec);
        let second = program.predict_roots(&units, &codec);
        assert_eq!(first, second, "stale child routing between runs");
    }

    #[test]
    fn wavefronts_batch_across_plans() {
        let (ds, fz, wh, units, _) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let program = PlanProgram::compile(&fz, &wh, &units, &roots);
        let total_nodes: usize = ds.plans.iter().map(|p| p.node_count()).sum();
        assert_eq!(program.num_nodes(), total_nodes);
        // The whole point: far fewer gemm groups than nodes.
        assert!(
            program.num_steps() * 4 < total_nodes,
            "{} steps for {} nodes — wavefronts are not batching",
            program.num_steps(),
            total_nodes
        );
    }

    #[test]
    fn empty_batch_compiles_and_predicts_nothing() {
        let (_, fz, wh, units, codec) = setup();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &[]);
        assert_eq!(program.num_plans(), 0);
        assert!(program.predict_roots(&units, &codec).is_empty());
    }

    #[test]
    fn engine_dispatch_agrees_between_paths() {
        let (ds, fz, wh, units, codec) = setup();
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        for caps in [None, Some(&caps)] {
            let a = predict_plans_with(InferEngine::Classes, &units, &fz, &wh, &codec, caps, &plans);
            let b = predict_plans_with(
                InferEngine::Program { threads: 1 },
                &units,
                &fz,
                &wh,
                &codec,
                caps,
                &plans,
            );
            for (x, y) in a.iter().zip(&b) {
                let rel = (x - y).abs() / (1.0 + x.abs());
                assert!(rel < 1e-5, "classes {x} vs program {y}");
            }
        }
    }

    #[test]
    fn levels_partition_steps_in_dependency_order() {
        let (ds, fz, wh, units, _) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let program = PlanProgram::compile(&fz, &wh, &units, &roots);
        // Levels tile the step list exactly, in order (compile emits step
        // ids sequentially).
        let flat: Vec<u32> = program.levels.iter().flatten().copied().collect();
        assert_eq!(flat, (0..program.num_steps() as u32).collect::<Vec<_>>());
        assert!(program.levels.iter().all(|l| !l.is_empty()), "empty level");
        assert!(program.num_levels() >= 2, "multi-operator plans need >= 2 levels");
        // Every child row referenced by a level's steps is produced by a
        // step of an earlier level — the property run_parallel's safety
        // argument rests on.
        let mut produced_before: Vec<std::collections::HashSet<usize>> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for level in &program.levels {
            produced_before.push(seen.clone());
            for &id in level {
                seen.extend(program.steps[id as usize].rows.iter().copied());
            }
        }
        for (l, level) in program.levels.iter().enumerate() {
            for &id in level {
                for &c in &program.steps[id as usize].child_rows {
                    assert!(
                        produced_before[l].contains(&c),
                        "level {l} reads row {c} not produced by an earlier level"
                    );
                }
            }
        }
    }

    #[test]
    fn run_parallel_is_bit_identical_across_thread_counts() {
        let (ds, fz, wh, units, codec) = setup();
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        let base_roots = program.predict_roots(&units, &codec);
        let base_all = program.predict_all(&units, &codec);
        let base_clamped = program.predict_roots_clamped(&units, &codec, &caps);
        for threads in [2, 3, 4, 8, 64] {
            assert_eq!(
                program.predict_roots_threaded(&units, &codec, threads),
                base_roots,
                "{threads} threads: roots differ"
            );
            assert_eq!(
                program.predict_all_threaded(&units, &codec, threads),
                base_all,
                "{threads} threads: per-operator predictions differ"
            );
            assert_eq!(
                program.predict_roots_clamped_threaded(&units, &codec, &caps, threads),
                base_clamped,
                "{threads} threads: clamped roots differ"
            );
        }
    }

    #[test]
    fn parallel_workers_reach_zero_steady_state_allocation() {
        let (ds, fz, wh, units, codec) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        // Warm-up run grows every worker's pool to its high-water mark.
        let first = program.predict_roots_threaded(&units, &codec, 4);
        let pooled: Vec<usize> = program.worker_pools.iter().map(|p| p.available()).collect();
        assert!(!pooled.is_empty() && pooled.iter().all(|&n| n > 0), "workers must pool buffers");
        // Steady state: repeated runs neither grow nor leak any pool, and
        // reuse is exact (every take is matched by a give).
        for _ in 0..3 {
            let again = program.predict_roots_threaded(&units, &codec, 4);
            assert_eq!(again, first, "stale routing between parallel runs");
            let now: Vec<usize> = program.worker_pools.iter().map(|p| p.available()).collect();
            assert_eq!(now, pooled, "worker pools changed in steady state");
        }
    }

    #[test]
    fn oversubscribed_threads_fall_back_cleanly() {
        let (ds, fz, wh, units, codec) = setup();
        // A plan whose levels are all single steps (e.g. a linear chain):
        // any thread count degrades to the sequential path (no spawn, no
        // barrier, no worker pools).
        let mut program = ds
            .plans
            .iter()
            .map(|p| PlanProgram::compile(&fz, &wh, &units, &[&p.root]))
            .find(|prog| prog.levels.iter().all(|l| l.len() == 1))
            .expect("some plan compiles to single-step levels");
        let one = program.predict_roots(&units, &codec);
        let many = program.predict_roots_threaded(&units, &codec, 8);
        assert_eq!(one, many);
        assert!(program.worker_pools.is_empty(), "fallback must not build worker pools");
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn mismatched_units_panic_instead_of_deadlocking_workers() {
        let (ds, fz, wh, units, codec) = setup();
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
        // A unit set with the same output width (so the cheap width check
        // passes) but different per-family input dims: the shape assert
        // fires *inside worker threads*. The poison protocol must convert
        // that into this panic on the caller, not a barrier deadlock.
        let other = Dataset::generate(Workload::TpcDs, 1.0, 8, 3);
        let fz2 = Featurizer::new(&other.catalog);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let units2 = UnitSet::new(&QppConfig::tiny(), &fz2, &mut rng);
        assert_eq!(units2.out_size(), units.out_size(), "width check must pass");
        let _ = program.predict_roots_threaded(&units2, &codec, 4);
    }

    #[test]
    fn engine_thread_accessors() {
        assert_eq!(InferEngine::parse("program"), Some(InferEngine::Program { threads: 1 }));
        assert_eq!(InferEngine::parse("classes"), Some(InferEngine::Classes));
        assert_eq!(InferEngine::parse("wavefront"), None);
        assert_eq!(InferEngine::default(), InferEngine::Program { threads: 1 });
        assert_eq!(InferEngine::Classes.threads(), 1);
        assert_eq!(InferEngine::Program { threads: 0 }.threads(), 1);
        assert_eq!(
            InferEngine::Program { threads: 1 }.with_threads(4),
            InferEngine::Program { threads: 4 }
        );
        assert_eq!(InferEngine::Classes.with_threads(4), InferEngine::Classes);
        assert_eq!(InferEngine::Program { threads: 4 }.name(), "program");
    }
}
