//! The `QppNet` model facade: fit / predict / evaluate / save / load.

use crate::config::{QppConfig, TargetCodec};
use crate::infer::{predict_plans_with, InferEngine, PlanProgram};
use crate::metrics::{evaluate, Metrics};
use crate::train::{TrainHistory, Trainer};
use crate::tree::RatioCaps;
use crate::unit::UnitSet;
use qpp_plansim::catalog::Catalog;
use qpp_plansim::features::{Featurizer, Whitener};
use qpp_plansim::plan::Plan;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Trained state: whitening statistics plus the neural units.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Fitted {
    whitener: Whitener,
    units: UnitSet,
    codec: TargetCodec,
    /// Stratified inclusive/child latency ratio caps (training maxima per
    /// family and child-latency decade, widened), for the inference-time
    /// structural envelope.
    ratio_caps: RatioCaps,
}

/// A plan-structured neural network for query performance prediction.
///
/// ```
/// use qppnet::{QppConfig, QppNet};
/// use qpp_plansim::prelude::*;
///
/// let ds = Dataset::generate(Workload::TpcH, 1.0, 60, 7);
/// let split = ds.paper_split(0);
/// let mut model = QppNet::new(QppConfig::tiny(), &ds.catalog);
/// model.fit(&ds.select(&split.train));
/// let metrics = model.evaluate(&ds.select(&split.test));
/// assert!(metrics.relative_error.is_finite());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QppNet {
    config: QppConfig,
    featurizer: Featurizer,
    fitted: Option<Fitted>,
}

impl QppNet {
    /// Creates an untrained model for plans generated against `catalog`.
    pub fn new(config: QppConfig, catalog: &Catalog) -> QppNet {
        QppNet { config, featurizer: Featurizer::new(catalog), fitted: None }
    }

    /// Creates an untrained model with a custom featurizer — e.g.
    /// [`Featurizer::with_learned_cardinalities`] for the paper's §7
    /// integration of an external cardinality estimator.
    pub fn with_featurizer(config: QppConfig, featurizer: Featurizer) -> QppNet {
        QppNet { config, featurizer, fitted: None }
    }

    /// The model's hyper-parameters.
    pub fn config(&self) -> &QppConfig {
        &self.config
    }

    /// Whether [`QppNet::fit`] has been called.
    pub fn is_fitted(&self) -> bool {
        self.fitted.is_some()
    }

    /// Total trainable parameters (0 before fitting).
    pub fn num_params(&self) -> usize {
        self.fitted.as_ref().map(|f| f.units.num_params()).unwrap_or(0)
    }

    /// Trains on `plans` (fits whitening statistics, initializes units
    /// unless warm-started, and runs the §5 training loop).
    pub fn fit(&mut self, plans: &[&Plan]) -> TrainHistory {
        self.fit_tracked(plans, None)
    }

    /// Like [`QppNet::fit`], additionally evaluating on `eval.0` every
    /// `eval.1` epochs (convergence traces for Figures 9b/9c).
    pub fn fit_tracked(
        &mut self,
        plans: &[&Plan],
        eval: Option<(&[&Plan], usize)>,
    ) -> TrainHistory {
        assert!(!plans.is_empty(), "cannot fit on zero plans");
        // Warm starts keep existing units, whitener and codec; cold starts
        // fit all three on the training plans.
        if self.fitted.is_none() {
            let whitener = Whitener::fit(&self.featurizer, plans.iter().copied());
            // The loss supervises every operator, so the codec is fit over
            // all per-operator latencies, not just query latencies.
            let mut latencies = Vec::new();
            for p in plans {
                p.root.visit_postorder(&mut |n| latencies.push(n.actual.latency_ms));
            }
            let codec = TargetCodec::fit(self.config.target_transform, latencies);
            let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
            let mut units = UnitSet::new(&self.config, &self.featurizer, &mut rng);

            // Disarm categorical features that never activate in training
            // (e.g. relations only referenced by held-out templates): their
            // randomly-initialized first-layer rows would otherwise inject
            // noise into unseen-template predictions.
            for kind in qpp_plansim::operators::OpKind::ALL {
                let size = self.featurizer.feature_size(kind);
                let numeric = self.featurizer.numeric_mask(kind);
                // Numeric positions stay live (whitening makes them
                // non-zero even when the raw value is 0).
                let mut active: Vec<bool> = numeric.to_vec();
                debug_assert_eq!(active.len(), size);
                for p in plans {
                    p.root.visit_postorder(&mut |n| {
                        if n.op.kind() == kind {
                            for (a, v) in
                                active.iter_mut().zip(self.featurizer.featurize(n))
                            {
                                *a |= v != 0.0;
                            }
                        }
                    });
                }
                units.mask_unused_inputs(kind, &active);
            }

            let ratio_caps = crate::tree::fit_ratio_caps(plans.iter().copied(), 2.0);
            self.fitted = Some(Fitted { whitener, units, codec, ratio_caps });
        }
        let fitted = self.fitted.as_mut().expect("just initialized");
        let trainer = Trainer {
            config: &self.config,
            featurizer: &self.featurizer,
            whitener: &fitted.whitener,
            codec: &fitted.codec,
            ratio_caps: if self.config.monotone_clamp {
                Some(&fitted.ratio_caps)
            } else {
                None
            },
        };
        trainer.train(&mut fitted.units, plans, eval)
    }

    /// Transfer-learning warm start (paper §8 future work): adopt the
    /// trained units and whitener of `src`. A subsequent [`QppNet::fit`]
    /// continues from these weights instead of re-initializing.
    ///
    /// # Panics
    /// Panics if `src` is unfitted or its feature layout differs.
    pub fn warm_start_from(&mut self, src: &QppNet) {
        let src_fitted = src.fitted.as_ref().expect("warm start from an unfitted model");
        for kind in qpp_plansim::operators::OpKind::ALL {
            assert_eq!(
                self.featurizer.feature_size(kind),
                src.featurizer.feature_size(kind),
                "feature layout mismatch for {kind:?}"
            );
        }
        self.fitted = Some(src_fitted.clone());
    }

    fn fitted(&self) -> &Fitted {
        self.fitted.as_ref().expect("model must be fitted before prediction")
    }

    /// Deterministic fingerprint of everything a compiled program bakes
    /// in: the featurizer (catalog statistics), the whitener, the codec
    /// and sampled unit weights. Any refit perturbs essentially every
    /// weight (gradients plus weight decay touch all parameters), and
    /// independently initialized models differ everywhere, so a small
    /// deterministic weight sample suffices to tell fitted states apart;
    /// the featurizer/whitener digests catch cross-model mismatches whose
    /// weights agree (e.g. a warm start onto a different catalog). Used
    /// to stamp compiled programs — see [`QppNet::predict_compiled`].
    fn fitted_fingerprint(&self) -> u64 {
        let f = self.fitted();
        let mut h = qpp_plansim::util::Fnv1a::new();
        h.mix(self.featurizer.digest());
        h.mix(f.whitener.digest());
        h.mix(f.units.num_params() as u64);
        h.mix(f.codec.mean.to_bits() as u64);
        h.mix(f.codec.std.to_bits() as u64);
        for kind in qpp_plansim::operators::OpKind::ALL {
            for layer in f.units.unit(kind).layers() {
                let (r, c) = (layer.w.rows(), layer.w.cols());
                h.mix(layer.w.get(0, 0).to_bits() as u64);
                h.mix(layer.w.get(r / 2, c / 2).to_bits() as u64);
                h.mix(layer.w.get(r - 1, c - 1).to_bits() as u64);
                h.mix(layer.b[layer.b.len() / 2].to_bits() as u64);
            }
        }
        h.finish()
    }

    /// Crate-internal view of the fitted state (featurizer, whitener,
    /// units, codec, active ratio caps) for analyses that drive the
    /// network directly, e.g. [`crate::importance`].
    ///
    /// # Panics
    /// Panics if the model is unfitted.
    pub(crate) fn fitted_parts(
        &self,
    ) -> (&Featurizer, &Whitener, &UnitSet, &TargetCodec, Option<&RatioCaps>) {
        let f = self.fitted();
        let caps = self.config.monotone_clamp.then_some(&f.ratio_caps);
        (&self.featurizer, &f.whitener, &f.units, &f.codec, caps)
    }

    /// Predicts the latency (milliseconds) of one plan.
    pub fn predict(&self, plan: &Plan) -> f64 {
        self.predict_batch(&[plan])[0]
    }

    /// Predicts latencies (milliseconds) for many plans through the
    /// compiled wavefront engine ([`crate::infer::PlanProgram`]) — the
    /// batch may mix arbitrary plan shapes freely.
    pub fn predict_batch(&self, plans: &[&Plan]) -> Vec<f64> {
        self.predict_batch_with(plans, InferEngine::default())
    }

    /// Like [`QppNet::predict_batch`] with an explicit engine choice; the
    /// per-equivalence-class path ([`InferEngine::Classes`]) is kept for
    /// differential testing and benchmarking against the serving engine,
    /// and [`InferEngine::Program`]`{ threads }` runs the wavefront
    /// schedule on a worker pool (identical results at any thread count —
    /// see `DESIGN.md` §7).
    pub fn predict_batch_with(&self, plans: &[&Plan], engine: InferEngine) -> Vec<f64> {
        let f = self.fitted();
        let caps = self.config.monotone_clamp.then_some(&f.ratio_caps);
        predict_plans_with(engine, &f.units, &self.featurizer, &f.whitener, &f.codec, caps, plans)
    }

    /// Compiles `plans` into a reusable inference program against this
    /// fitted model (see [`PlanProgram`]): the schedule and buffers are
    /// built once, so a serving loop that re-scores the same plan set
    /// (e.g. under admission control) pays compilation once.
    pub fn compile_program(&self, plans: &[&Plan]) -> PlanProgram {
        let f = self.fitted();
        let roots: Vec<&qpp_plansim::plan::PlanNode> = plans.iter().map(|p| &p.root).collect();
        let mut program = PlanProgram::compile(&self.featurizer, &f.whitener, &f.units, &roots);
        program.stamp_fingerprint(self.fitted_fingerprint());
        program
    }

    /// Opens a streaming-admission session: an incremental
    /// [`crate::stream::ProgramBuilder`] over this fitted model, with the
    /// configured clamping policy. Admit plans as they arrive, predict, retire them
    /// when they finish — no per-arrival recompilation of the resident
    /// batch (see [`crate::stream`] for the execution model and the
    /// bit-identity contract against [`QppNet::compile_program`]).
    ///
    /// The builder borrows the fitted state, so refitting while a
    /// session is live is rejected at compile time — the static analogue
    /// of [`QppNet::predict_compiled`]'s fingerprint check.
    ///
    /// # Panics
    /// Panics if the model is unfitted.
    pub fn serve_stream(&self) -> crate::stream::ProgramBuilder<'_> {
        let (fz, wh, units, codec, caps) = self.fitted_parts();
        crate::stream::ProgramBuilder::new(fz, wh, units, codec, caps)
    }

    /// The fitted-state fingerprint, or `None` before [`QppNet::fit`].
    /// This is the identity compiled programs are stamped with
    /// ([`QppNet::predict_compiled`]) and the key resident streams are
    /// registered under in a multi-model [`Tenants`] pool.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fitted.as_ref().map(|_| self.fitted_fingerprint())
    }

    /// Opens a shard-per-core streaming session: `shards` independent
    /// [`crate::stream::ProgramBuilder`]s behind a
    /// [`crate::stream::ShardedStream`] front door, so concurrent
    /// admissions proceed in parallel on the resident executor and
    /// coalesced predicts run one worker per shard (see
    /// [`crate::stream::MicroBatcher`] for the batching front door).
    /// Predictions are bit-identical to [`QppNet::serve_stream`] at every
    /// shard and thread count.
    ///
    /// # Panics
    /// Panics if the model is unfitted.
    pub fn serve_sharded(&self, shards: usize) -> crate::stream::ShardedStream<'_> {
        let fingerprint = self.fitted_fingerprint();
        let (fz, wh, units, codec, caps) = self.fitted_parts();
        crate::stream::ShardedStream::new(fz, wh, units, codec, caps, shards, fingerprint)
    }

    /// Runs a program from [`QppNet::compile_program`], returning decoded
    /// root predictions (clamped onto the structural envelope when the
    /// config enables it, exactly like [`QppNet::predict_batch`]).
    ///
    /// # Panics
    /// Panics if this model's fitted parameters differ from those the
    /// program was compiled against — a refit (or warm start) since
    /// `compile_program`, or a program compiled by a *different* model:
    /// either way the program's baked-in whitened features would silently
    /// mismatch the weights.
    pub fn predict_compiled(&self, program: &mut PlanProgram) -> Vec<f64> {
        self.predict_compiled_with(program, 1)
    }

    /// [`QppNet::predict_compiled`] on `threads` worker threads
    /// ([`PlanProgram::run_parallel`]): the serving configuration for
    /// multicore hosts. Thread count never changes the predictions — only
    /// how the wavefront steps are distributed across cores.
    ///
    /// # Panics
    /// As [`QppNet::predict_compiled`].
    pub fn predict_compiled_with(&self, program: &mut PlanProgram, threads: usize) -> Vec<f64> {
        assert_eq!(
            program.fingerprint(),
            Some(self.fitted_fingerprint()),
            "compiled program is stale: the model was refit (or is not the model \
             that compiled it) — recompile the program against the current fit"
        );
        let f = self.fitted();
        if self.config.monotone_clamp {
            program.predict_roots_clamped_threaded(&f.units, &f.codec, &f.ratio_caps, threads)
        } else {
            program.predict_roots_threaded(&f.units, &f.codec, threads)
        }
    }

    /// Per-operator latency predictions for one plan, in post order
    /// (milliseconds). The last entry is the root/query prediction.
    pub fn predict_operators(&self, plan: &Plan) -> Vec<f64> {
        let f = self.fitted();
        let mut program =
            PlanProgram::compile(&self.featurizer, &f.whitener, &f.units, &[&plan.root]);
        let mut all = if self.config.monotone_clamp {
            program.predict_all_clamped(&f.units, &f.codec, &f.ratio_caps)
        } else {
            program.predict_all(&f.units, &f.codec)
        };
        all.pop().expect("one plan compiled")
    }

    /// Evaluates prediction quality on `plans`.
    pub fn evaluate(&self, plans: &[&Plan]) -> Metrics {
        let preds = self.predict_batch(plans);
        let actual: Vec<f64> = plans.iter().map(|p| p.latency_ms()).collect();
        evaluate(&actual, &preds)
    }

    /// [`QppNet::evaluate`] plus the stratified breakdowns that qualify
    /// the headline numbers: per-operator-family and per-plan-height
    /// Q-error (see [`crate::analysis::StratifiedReport`]) — a flat
    /// aggregate can look healthy while one family or one depth stratum
    /// carries all the error.
    pub fn evaluate_stratified(&self, plans: &[&Plan]) -> crate::analysis::StratifiedReport {
        crate::analysis::StratifiedReport {
            overall: self.evaluate(plans),
            families: crate::analysis::error_by_family(self, plans),
            heights: crate::analysis::error_by_height(self, plans),
            deciles: crate::analysis::error_by_latency_decile(self, plans),
        }
    }

    /// Serializes the full model (config, featurization, whitening, units)
    /// to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Restores a model from [`QppNet::to_json`] output.
    pub fn from_json(json: &str) -> Result<QppNet, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Multi-model tenancy: a registry of resident
/// [`ShardedStream`](crate::stream::ShardedStream)s keyed by each fitted
/// model's [fingerprint](QppNet::fingerprint). Every tenant's serving and
/// training work dispatches onto the *one* process-wide resident executor
/// ([`qpp_nn::Executor::global`]), so co-hosted models (per-workload
/// specialists, canary-vs-production fits) share the parked worker pool
/// and its per-worker buffer arenas instead of each spawning their own
/// threads.
///
/// Registration is **idempotent by fitted identity**: registering a model
/// whose fingerprint is already resident returns the existing stream
/// untouched (same resident plans, same caches) — the fingerprint check
/// is what makes "is this the same fitted state?" exact rather than
/// by-reference, so a refit model registers as a *new* tenant instead of
/// silently serving stale weights.
///
/// ```
/// use qppnet::{QppConfig, QppNet, Tenants};
/// use qpp_plansim::prelude::*;
///
/// let ds = Dataset::generate(Workload::TpcH, 1.0, 24, 3);
/// let mut model = QppNet::new(QppConfig { epochs: 1, ..QppConfig::tiny() }, &ds.catalog);
/// model.fit(&ds.plans.iter().take(16).collect::<Vec<_>>());
///
/// let mut pool = Tenants::new();
/// let key = pool.register(&model, 2);
/// assert_eq!(Some(key), model.fingerprint());
/// let stream = pool.stream(key).unwrap();
/// let id = stream.admit(&ds.plans[0].root);
/// let _ms = stream.predict_root(id);
/// assert_eq!(pool.register(&model, 2), key); // idempotent: same tenant
/// ```
#[derive(Default)]
pub struct Tenants<'m> {
    tenants: std::collections::BTreeMap<u64, crate::stream::ShardedStream<'m>>,
}

impl<'m> Tenants<'m> {
    /// An empty registry.
    pub fn new() -> Tenants<'m> {
        Tenants::default()
    }

    /// Registers `model` as a resident tenant with `shards` shards,
    /// returning its fingerprint key. Idempotent: if this fitted state is
    /// already registered, the existing stream (and its resident plans)
    /// is kept and `shards` is ignored.
    ///
    /// # Panics
    /// Panics if the model is unfitted.
    pub fn register(&mut self, model: &'m QppNet, shards: usize) -> u64 {
        let key = model.fingerprint().expect("register an unfitted model");
        self.tenants.entry(key).or_insert_with(|| model.serve_sharded(shards));
        key
    }

    /// The resident stream for `fingerprint`, if registered.
    pub fn stream(&mut self, fingerprint: u64) -> Option<&mut crate::stream::ShardedStream<'m>> {
        self.tenants.get_mut(&fingerprint)
    }

    /// Evicts a tenant, dropping its resident plans; returns whether it
    /// was registered.
    pub fn evict(&mut self, fingerprint: u64) -> bool {
        self.tenants.remove(&fingerprint).is_some()
    }

    /// Number of resident tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Registered fingerprints, ascending.
    pub fn fingerprints(&self) -> Vec<u64> {
        self.tenants.keys().copied().collect()
    }

    /// Iterates `(fingerprint, stream)` pairs in ascending fingerprint
    /// order without requiring `&mut` — read-only aggregation (e.g. the
    /// serve daemon's `stats` verb) over every tenant's resident state.
    pub fn iter(
        &self,
    ) -> impl Iterator<Item = (u64, &crate::stream::ShardedStream<'m>)> {
        self.tenants.iter().map(|(fp, s)| (*fp, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    fn dataset() -> Dataset {
        Dataset::generate(Workload::TpcH, 1.0, 80, 31)
    }

    /// `tiny()` with a test-sized epoch count: most tests here assert
    /// structural properties (finiteness, round-trips, determinism,
    /// engine agreement), which a handful of epochs exercises just as
    /// well as thirty — and the suite's wall clock is dominated by `fit`.
    fn fast(epochs: usize) -> QppConfig {
        QppConfig { epochs, ..QppConfig::tiny() }
    }

    #[test]
    fn fit_then_predict_produces_finite_latencies() {
        let ds = dataset();
        let split = ds.paper_split(1);
        let mut model = QppNet::new(fast(6), &ds.catalog);
        model.fit(&ds.select(&split.train));
        assert!(model.is_fitted());
        assert!(model.num_params() > 0);
        for p in ds.select(&split.test) {
            let pred = model.predict(p);
            assert!(pred.is_finite() && pred >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "fitted")]
    fn predict_before_fit_panics() {
        let ds = dataset();
        let model = QppNet::new(QppConfig::tiny(), &ds.catalog);
        let _ = model.predict(&ds.plans[0]);
    }

    #[test]
    fn training_beats_an_untrained_model() {
        let ds = dataset();
        let split = ds.paper_split(2);
        let train = ds.select(&split.train);
        let test = ds.select(&split.test);

        // Clamping is disabled so the comparison isolates what *training*
        // contributes (the structural envelope already helps untrained
        // models).
        let cfg = QppConfig { monotone_clamp: false, ..QppConfig::tiny() };
        let mut trained = QppNet::new(QppConfig { epochs: 30, ..cfg.clone() }, &ds.catalog);
        trained.fit(&train);
        let trained_m = trained.evaluate(&test);

        let mut barely = QppNet::new(QppConfig { epochs: 1, ..cfg }, &ds.catalog);
        barely.fit(&train);
        let barely_m = barely.evaluate(&test);

        assert!(
            trained_m.mae_ms < barely_m.mae_ms,
            "trained {} vs barely {}",
            trained_m.mae_ms,
            barely_m.mae_ms
        );
    }

    #[test]
    fn per_operator_predictions_align_with_postorder() {
        let ds = dataset();
        let mut model = QppNet::new(fast(5), &ds.catalog);
        model.fit(&ds.plans.iter().take(30).collect::<Vec<_>>());
        let plan = &ds.plans[0];
        let per_op = model.predict_operators(plan);
        assert_eq!(per_op.len(), plan.node_count());
        let root_pred = model.predict(plan);
        let rel = (per_op.last().unwrap() - root_pred).abs() / (1.0 + root_pred);
        assert!(rel < 1e-6);
    }

    #[test]
    fn both_engines_agree_through_the_facade() {
        let ds = dataset();
        let mut model = QppNet::new(fast(5), &ds.catalog);
        model.fit(&ds.plans.iter().take(40).collect::<Vec<_>>());
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let program = model.predict_batch_with(&plans, crate::infer::InferEngine::default());
        let classes = model.predict_batch_with(&plans, crate::infer::InferEngine::Classes);
        for (a, b) in program.iter().zip(&classes) {
            // 1e-5: the serving gemm may use FMA; rounding differs from the
            // scalar per-class path by a few ULP per accumulation chain.
            let rel = (a - b).abs() / (1.0 + b.abs());
            assert!(rel < 1e-5, "program {a} vs classes {b}");
        }
        // Compile-once/run-many serving matches one-shot prediction, at
        // any thread count (bit-identical; DESIGN.md §7).
        let mut compiled = model.compile_program(&plans);
        assert_eq!(model.predict_compiled(&mut compiled), program);
        assert_eq!(model.predict_compiled(&mut compiled), program);
        assert_eq!(model.predict_compiled_with(&mut compiled, 4), program);
        let threaded =
            model.predict_batch_with(&plans, crate::infer::InferEngine::Program { threads: 4 });
        assert_eq!(threaded, program);
    }

    #[test]
    fn serve_stream_matches_compiled_batch_bitwise() {
        let ds = dataset();
        let mut model = QppNet::new(fast(4), &ds.catalog);
        model.fit(&ds.plans.iter().take(30).collect::<Vec<_>>());
        let plans: Vec<&Plan> = ds.plans.iter().take(20).collect();
        // Admit the same set a compiled batch would hold; the streaming
        // session applies the model's configured clamping automatically.
        let mut stream = model.serve_stream();
        for p in &plans {
            stream.admit(&p.root);
        }
        let streamed = stream.predict_roots();
        drop(stream);
        let mut program = model.compile_program(&plans);
        let compiled = model.predict_compiled(&mut program);
        assert_eq!(
            streamed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            compiled.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "streaming admission must be bit-identical to a fresh compiled batch"
        );
    }

    #[test]
    #[should_panic(expected = "compiled program is stale")]
    fn refit_invalidates_compiled_programs() {
        let ds = dataset();
        let mut model = QppNet::new(fast(2), &ds.catalog);
        let train: Vec<&Plan> = ds.plans.iter().take(20).collect();
        model.fit(&train);
        let plans: Vec<&Plan> = ds.plans.iter().take(10).collect();
        let mut program = model.compile_program(&plans);
        // A refit changes the units (and on cold fits the whitener) while
        // keeping all shapes — the program's baked features are stale.
        model.fit(&train);
        let _ = model.predict_compiled(&mut program);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let ds = dataset();
        let mut model = QppNet::new(fast(5), &ds.catalog);
        model.fit(&ds.plans.iter().take(20).collect::<Vec<_>>());
        let json = model.to_json();
        let back = QppNet::from_json(&json).unwrap();
        for p in ds.plans.iter().take(5) {
            assert_eq!(model.predict(p), back.predict(p));
        }
    }

    #[test]
    fn warm_start_transfers_behaviour_and_allows_fine_tuning() {
        let ds = dataset();
        let train: Vec<&Plan> = ds.plans.iter().take(30).collect();
        let mut src = QppNet::new(fast(8), &ds.catalog);
        src.fit(&train);

        let mut dst = QppNet::new(QppConfig { epochs: 3, ..QppConfig::tiny() }, &ds.catalog);
        dst.warm_start_from(&src);
        // Identical predictions before fine-tuning.
        assert_eq!(src.predict(&ds.plans[0]), dst.predict(&ds.plans[0]));
        // Fine-tuning continues from the warm state without panicking.
        dst.fit(&train);
        assert!(dst.predict(&ds.plans[0]).is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let train: Vec<&Plan> = ds.plans.iter().take(25).collect();
        let mut a = QppNet::new(fast(6), &ds.catalog);
        let mut b = QppNet::new(fast(6), &ds.catalog);
        a.fit(&train);
        b.fit(&train);
        assert_eq!(a.predict(&ds.plans[0]), b.predict(&ds.plans[0]));
    }
}
