//! Permutation feature importance for trained QPPNet models.
//!
//! The paper's data vectors are deliberately *opaque* (§5), which makes the
//! trained model hard to inspect. Permutation importance recovers a
//! model-agnostic view of which *input* features the network actually
//! relies on: a feature column is replaced by values drawn at random from
//! its marginal distribution over the evaluation set, and the resulting
//! degradation in MAE is the feature's importance. Features the model
//! ignores degrade nothing; features it leans on degrade a lot.
//!
//! This is an interpretability extension beyond the paper, reported by the
//! `importance` bench binary.

use crate::model::QppNet;
use crate::tree::{equivalence_classes, TreeBatch};
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::Plan;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Importance of one feature position of one operator family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureImportance {
    /// Operator family the feature belongs to.
    pub kind: OpKind,
    /// Position inside the family's feature vector.
    pub position: usize,
    /// Human-readable feature label (Table-2 naming).
    pub label: String,
    /// MAE (ms) with this feature permuted.
    pub permuted_mae_ms: f64,
    /// `permuted_mae_ms − baseline_mae_ms`; larger = more important.
    pub delta_mae_ms: f64,
}

/// Computes permutation importance for every feature of every operator
/// family on `plans`, sorted by descending importance.
///
/// Constant columns (never varying across `plans`, e.g. one-hot slots of
/// relations the evaluation set doesn't touch) are reported with a delta
/// of zero without running the network.
///
/// # Panics
/// Panics if the model is unfitted or `plans` is empty.
pub fn permutation_importance(
    model: &QppNet,
    plans: &[&Plan],
    seed: u64,
) -> Vec<FeatureImportance> {
    assert!(!plans.is_empty(), "cannot compute importance on zero plans");
    let (featurizer, whitener, units, codec, caps) = model.fitted_parts();
    let actual: Vec<f64> = plans.iter().map(|p| p.latency_ms()).collect();
    // The baseline must come from the same engine as the permuted
    // predictions below (per-class TreeBatch): the serving engine's SIMD
    // gemm differs by FMA rounding, which would otherwise inject a
    // systematic bias into every delta.
    let baseline_preds =
        model.predict_batch_with(plans, crate::infer::InferEngine::Classes);
    let baseline = crate::metrics::evaluate(&actual, &baseline_preds).mae_ms;

    // Pool of whitened feature vectors per family, drawn from every node
    // of every evaluation plan.
    let mut pools: Vec<Vec<Vec<f32>>> = vec![Vec::new(); OpKind::ALL.len()];
    for p in plans {
        p.root.visit_postorder(&mut |n| {
            pools[n.op.kind().index()].push(whitener.features(featurizer, n));
        });
    }

    let classes = equivalence_classes(plans.iter().enumerate().map(|(i, p)| (i, &p.root)));
    let mut out = Vec::new();

    for kind in OpKind::ALL {
        let pool = &pools[kind.index()];
        if pool.is_empty() {
            continue;
        }
        let labels = featurizer.feature_labels(kind);
        for position in 0..featurizer.feature_size(kind) {
            let label = labels[position].clone();
            // Skip constant columns: permuting them is a no-op.
            let first = pool[0][position];
            if pool.iter().all(|v| (v[position] - first).abs() < 1e-12) {
                out.push(FeatureImportance {
                    kind,
                    position,
                    label,
                    permuted_mae_ms: baseline,
                    delta_mae_ms: 0.0,
                });
                continue;
            }

            // Predict with the column replaced by draws from its marginal.
            let rng = RefCell::new(rand::rngs::StdRng::seed_from_u64(
                seed ^ (kind.index() as u64) << 32 ^ position as u64,
            ));
            let features_of = |node: &qpp_plansim::plan::PlanNode| -> Vec<f32> {
                let mut v = whitener.features(featurizer, node);
                if node.op.kind() == kind {
                    let k = rng.borrow_mut().gen_range(0..pool.len());
                    v[position] = pool[k][position];
                }
                v
            };

            let mut preds = vec![0.0f64; plans.len()];
            for (_, members) in &classes {
                let roots: Vec<&qpp_plansim::plan::PlanNode> =
                    members.iter().map(|&i| &plans[i].root).collect();
                let tb = TreeBatch::build_with(features_of, codec, &roots);
                let class_preds = match caps {
                    Some(c) => tb.predict_roots_clamped(units, codec, c),
                    None => tb.predict_roots(units, codec),
                };
                for (&i, p) in members.iter().zip(class_preds) {
                    preds[i] = p;
                }
            }
            let permuted = crate::metrics::evaluate(&actual, &preds).mae_ms;
            out.push(FeatureImportance {
                kind,
                position,
                label,
                permuted_mae_ms: permuted,
                delta_mae_ms: permuted - baseline,
            });
        }
    }

    out.sort_by(|a, b| b.delta_mae_ms.partial_cmp(&a.delta_mae_ms).expect("finite deltas"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QppConfig;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    fn fitted_model() -> (Dataset, QppNet) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 60, 17);
        let mut model = QppNet::new(QppConfig { epochs: 15, ..QppConfig::tiny() }, &ds.catalog);
        model.fit(&ds.plans.iter().collect::<Vec<_>>());
        (ds, model)
    }

    #[test]
    fn covers_every_feature_of_every_used_family() {
        let (ds, model) = fitted_model();
        let plans: Vec<&Plan> = ds.plans.iter().take(20).collect();
        let imp = permutation_importance(&model, &plans, 1);
        // Every (kind, position) pair appears at most once.
        let mut seen = std::collections::HashSet::new();
        for f in &imp {
            assert!(seen.insert((f.kind, f.position)), "duplicate {:?}/{}", f.kind, f.position);
            assert!(f.permuted_mae_ms.is_finite());
        }
        // Scans always appear in TPC-H plans.
        assert!(imp.iter().any(|f| f.kind == OpKind::Scan));
    }

    #[test]
    fn sorted_descending_by_delta() {
        let (ds, model) = fitted_model();
        let plans: Vec<&Plan> = ds.plans.iter().take(20).collect();
        let imp = permutation_importance(&model, &plans, 2);
        for w in imp.windows(2) {
            assert!(w[0].delta_mae_ms >= w[1].delta_mae_ms);
        }
    }

    #[test]
    fn important_features_exist_after_training() {
        // A trained model must rely on *something*: the top feature's
        // permutation should measurably degrade MAE.
        let (ds, model) = fitted_model();
        let plans: Vec<&Plan> = ds.plans.iter().take(30).collect();
        let imp = permutation_importance(&model, &plans, 3);
        assert!(
            imp.first().map(|f| f.delta_mae_ms).unwrap_or(0.0) > 0.0,
            "expected at least one feature with positive importance"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let (ds, model) = fitted_model();
        let plans: Vec<&Plan> = ds.plans.iter().take(15).collect();
        let a = permutation_importance(&model, &plans, 5);
        let b = permutation_importance(&model, &plans, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.delta_mae_ms, y.delta_mae_ms);
        }
    }
}
