//! Scratch-backed wire decoder: request line → lowering-ready CSR, no `Value` tree.
//!
//! The slow path decodes a request in three allocating passes: the vendored
//! `serde_json` parser builds a `Value` tree (one `String`/`Vec`/`BTreeMap`
//! per node), `from_value::<PlanNode>` rebuilds a plan *tree* from it, and
//! the stream layer then lowers that tree into CSR arrays. This module fuses
//! all three: [`RequestScratch::decode`] parses the JSON bytes in one pass
//! directly into a reusable [`ScratchPlan`] (post-order nodes + CSR
//! children), using per-connection buffers that reach a steady-state
//! capacity and never allocate again.
//!
//! **Contract — fallback, not error parity.** The fast decoder recognises
//! exactly one shape: a fully valid, protocol-v1 `admit_predict` request
//! with `keep` absent or `false` and a plan whose operators all have their
//! required arity. On that shape it returns [`FastDecode::Ready`] and the
//! request is *guaranteed* to decode to the same plan (bit-for-bit node
//! content, identical CSR and shard hash) as the recursive oracle
//! ([`proto::parse_guarded`](super::proto::parse_guarded) +
//! `from_value::<PlanNode>`). On *anything* else — malformed JSON, a
//! different verb, `keep:true`, a bad tenant, an arity violation, nesting
//! beyond [`super::MAX_NESTING_DEPTH`] — it returns
//! [`FastDecode::Fallback`] and the caller re-runs the oracle path, which
//! produces byte-exact error replies. The decoder therefore never needs to
//! replicate error *messages*, but it must replicate the oracle's **accept
//! set** exactly, or a request the oracle would reject could be served (or
//! vice versa). `tests/serve_scratch.rs` proptests that equivalence.
//!
//! Replicating the accept set means replicating two vendored layers:
//!
//! 1. **Grammar** (`vendor/serde_json::parse`): `\u` escapes read exactly 4
//!    bytes and go through `u32::from_str_radix(_, 16)` (which accepts a
//!    leading `+`); numbers lex a greedy run over `[0-9.eE+-]` and accept
//!    whatever `f64::from_str` accepts (`1e999` → `inf`); raw control
//!    characters are legal inside strings; keywords must match in full.
//! 2. **Derive semantics** (`vendor/serde_derive`): objects are `BTreeMap`s
//!    so *duplicate keys are last-wins*; unknown struct fields are ignored;
//!    missing fields without `#[serde(default)]` are errors; externally
//!    tagged enums accept a bare string for unit variants and a
//!    single-distinct-key object for payload variants; `usize` fields go
//!    through an `as` cast from `f64` (NaN → 0, negative → 0, fractional
//!    truncates).
//!
//! Last-wins duplicates force a two-level error model. A *structural* error
//! (bad JSON) aborts the whole parse (the private `Reject` marker). A
//! *semantic* mismatch (wrong type, unknown variant, missing field) only
//! poisons the value being built (`Sem::Bad`) — the parser keeps consuming,
//! because a later duplicate key can overwrite the bad value and rescue the
//! request, exactly as the `BTreeMap` does. Scratch state is backed out
//! with marks: a `Bad` node truncates [`ScratchPlan`] to its entry mark, a
//! duplicate `children`/`plan` key truncates before re-parsing, so the
//! arrays always hold exactly the nodes of the *surviving* occurrence.

use crate::stream::ScratchPlan;
use qpp_plansim::operators::{
    AggOp, AggStrategy, HashAlgorithm, JoinAlgorithm, JoinType, Operator, ParentRel, ScanMethod,
    SortMethod,
};
use qpp_plansim::plan::{NodeActual, NodeEst, PlanNode};

use super::proto::VERSION;
use super::MAX_NESTING_DEPTH;

/// Outcome of a fast decode attempt over one request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastDecode {
    /// A fully valid one-shot `admit_predict` (`keep:false`) request; the
    /// decoded plan is in [`RequestScratch::plan`], sealed and arity-checked.
    Ready {
        /// Explicit tenant fingerprint, if the request named one.
        tenant: Option<u64>,
    },
    /// Anything else; the caller must re-run the recursive oracle path
    /// (which also produces the byte-exact error reply when one is due).
    Fallback,
}

/// Per-connection scratch for the fast decoder. All buffers are retained
/// across requests; after warm-up a well-formed request decodes without
/// touching the heap.
#[derive(Default)]
pub struct RequestScratch {
    plan: ScratchPlan,
    kid_stack: Vec<usize>,
    key_buf: String,
    str_buf: String,
}

impl RequestScratch {
    /// An empty scratch (no capacity reserved yet).
    pub fn new() -> RequestScratch {
        RequestScratch::default()
    }

    /// The plan decoded by the last successful [`decode`](Self::decode) or
    /// [`decode_plan_doc`](Self::decode_plan_doc) call.
    pub fn plan(&self) -> &ScratchPlan {
        &self.plan
    }

    /// Attempts the zero-allocation decode of one request line.
    ///
    /// Returns [`FastDecode::Ready`] only when the line is a completely
    /// valid v1 `admit_predict` request with `keep` false/absent and a
    /// plan that passes the arity check; see the module docs for the
    /// fallback contract.
    pub fn decode(&mut self, line: &str) -> FastDecode {
        self.plan.clear();
        self.kid_stack.clear();
        let outcome = {
            let mut p = Fp {
                s: line,
                bytes: line.as_bytes(),
                pos: 0,
                depth: 0,
                cap: MAX_NESTING_DEPTH,
                sp: &mut self.plan,
                kids: &mut self.kid_stack,
                key_buf: &mut self.key_buf,
                str_buf: &mut self.str_buf,
            };
            p.request()
        };
        match outcome {
            Ok(Some(tenant)) => {
                self.plan.seal();
                if self.plan.arity_ok() {
                    FastDecode::Ready { tenant }
                } else {
                    FastDecode::Fallback
                }
            }
            _ => FastDecode::Fallback,
        }
    }

    /// Differential surface for the proptests: decodes a bare `PlanNode`
    /// JSON document, returning `true` exactly when
    /// [`proto::parse_guarded`](super::proto::parse_guarded) +
    /// `from_value::<PlanNode>` would accept it. On `true` the lowered CSR
    /// is in [`plan`](Self::plan), sealed (arity is *not* checked — the
    /// oracle's `from_value` doesn't either).
    pub fn decode_plan_doc(&mut self, doc: &str) -> bool {
        self.plan.clear();
        self.kid_stack.clear();
        let ok = {
            let mut p = Fp {
                s: doc,
                bytes: doc.as_bytes(),
                pos: 0,
                depth: 0,
                cap: MAX_NESTING_DEPTH,
                sp: &mut self.plan,
                kids: &mut self.kid_stack,
                key_buf: &mut self.key_buf,
                str_buf: &mut self.str_buf,
            };
            p.skip_ws();
            match p.plan_node() {
                Ok(Sem::Good(_)) => {
                    p.skip_ws();
                    p.pos == p.bytes.len()
                }
                _ => false,
            }
        };
        if ok {
            self.plan.seal();
        }
        ok
    }
}

/// Structural JSON error: the line is not valid JSON (or exceeds the
/// nesting cap). Aborts the whole parse; no duplicate key can rescue it.
struct Reject;

type PR<T> = Result<T, Reject>;

/// Semantic outcome of a typed sub-parse: the bytes were structurally
/// valid JSON, but the value either matched the expected Rust type
/// (`Good`) or did not (`Bad`). `Bad` values keep the parse alive so a
/// later duplicate key can overwrite them (last-wins).
enum Sem<T> {
    Good(T),
    Bad,
}

/// The fused parser. `sp`/`kids` receive plan nodes as they complete;
/// `key_buf`/`str_buf` are reusable decode targets for object keys and
/// string values (enum tags, verbs, tenant fingerprints).
struct Fp<'a, 'b> {
    s: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    cap: usize,
    sp: &'b mut ScratchPlan,
    kids: &'b mut Vec<usize>,
    key_buf: &'b mut String,
    str_buf: &'b mut String,
}

impl Fp<'_, '_> {
    // --- lexical layer: byte-exact replica of `vendor/serde_json` -------

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Consumes an opening bracket and enforces the nesting cap (the
    /// oracle's `nesting_depth` pre-scan counts the same brackets).
    fn open(&mut self) -> PR<()> {
        self.pos += 1;
        self.depth += 1;
        if self.depth > self.cap {
            return Err(Reject);
        }
        Ok(())
    }

    fn keyword(&mut self, kw: &str) -> PR<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Reject)
        }
    }

    /// Number lexer + `f64::from_str`, exactly as the oracle: greedy run
    /// over `[0-9.eE+-]` after an optional `-`, then parse the slice (so
    /// `1e999` → `inf` is accepted, `1-2` or a bare `-` is structural).
    fn number(&mut self) -> PR<f64> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.s[start..self.pos].parse::<f64>().map_err(|_| Reject)
    }

    /// String scanner; decodes into `out` when given. Escape handling is a
    /// byte-exact replica of the oracle, including the `\u` quirks: read
    /// exactly 4 bytes, `from_utf8`, `u32::from_str_radix(_, 16)` (leading
    /// `+` accepted), `char::from_u32` (surrogates reject).
    fn string_impl(&mut self, mut out: Option<&mut String>) -> PR<()> {
        if self.peek() != Some(b'"') {
            return Err(Reject);
        }
        self.pos += 1;
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let c = match self.peek() {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b'r') => '\r',
                        Some(b't') => '\t',
                        Some(b'b') => '\u{08}',
                        Some(b'f') => '\u{0C}',
                        Some(b'u') => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5).ok_or(Reject)?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(Reject)?;
                            let c = char::from_u32(code).ok_or(Reject)?;
                            self.pos += 4;
                            c
                        }
                        _ => return Err(Reject),
                    };
                    if let Some(buf) = out.as_deref_mut() {
                        buf.push(c);
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Raw chars (incl. control bytes and multi-byte UTF-8)
                    // pass through; `pos` is always on a char boundary.
                    let c = self
                        .s
                        .get(self.pos..)
                        .and_then(|r| r.chars().next())
                        .ok_or(Reject)?;
                    if let Some(buf) = out.as_deref_mut() {
                        buf.push(c);
                    }
                    self.pos += c.len_utf8();
                }
                None => return Err(Reject),
            }
        }
    }

    /// Decodes an object key into `key_buf`.
    fn key(&mut self) -> PR<()> {
        let mut buf = std::mem::take(self.key_buf);
        buf.clear();
        let r = self.string_impl(Some(&mut buf));
        *self.key_buf = buf;
        r
    }

    /// Decodes a string value into `str_buf`.
    fn string_value(&mut self) -> PR<()> {
        let mut buf = std::mem::take(self.str_buf);
        buf.clear();
        let r = self.string_impl(Some(&mut buf));
        *self.str_buf = buf;
        r
    }

    /// Structurally validates and discards one JSON value (the oracle
    /// parses it into a `Value`; semantically it is ignored or rejected).
    fn skip_value(&mut self) -> PR<()> {
        match self.peek() {
            Some(b'n') => self.keyword("null"),
            Some(b't') => self.keyword("true"),
            Some(b'f') => self.keyword("false"),
            Some(b'"') => self.string_impl(None),
            Some(b'[') => {
                self.open()?;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.skip_value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(());
                        }
                        _ => return Err(Reject),
                    }
                }
            }
            Some(b'{') => {
                self.open()?;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.string_impl(None)?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return Err(Reject);
                    }
                    self.pos += 1;
                    self.skip_ws();
                    self.skip_value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(());
                        }
                        _ => return Err(Reject),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number().map(|_| ()),
            _ => Err(Reject),
        }
    }

    // --- typed layer: replica of the vendored derive semantics ----------

    fn sem_f64(&mut self) -> PR<Sem<f64>> {
        match self.peek() {
            Some(c) if c == b'-' || c.is_ascii_digit() => Ok(Sem::Good(self.number()?)),
            _ => {
                self.skip_value()?;
                Ok(Sem::Bad)
            }
        }
    }

    /// `usize` fields go through the same `as` cast the vendored serde
    /// uses (`Value::Number(n) => n as usize`).
    fn sem_usize(&mut self) -> PR<Sem<usize>> {
        Ok(match self.sem_f64()? {
            Sem::Good(n) => Sem::Good(n as usize),
            Sem::Bad => Sem::Bad,
        })
    }

    fn sem_bool(&mut self) -> PR<Sem<bool>> {
        match self.peek() {
            Some(b't') => {
                self.keyword("true")?;
                Ok(Sem::Good(true))
            }
            Some(b'f') => {
                self.keyword("false")?;
                Ok(Sem::Good(false))
            }
            _ => {
                self.skip_value()?;
                Ok(Sem::Bad)
            }
        }
    }

    /// `Option<f64>`: `null` → `None`, number → `Some`, else type error.
    fn sem_opt_f64(&mut self) -> PR<Sem<Option<f64>>> {
        match self.peek() {
            Some(b'n') => {
                self.keyword("null")?;
                Ok(Sem::Good(None))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => Ok(Sem::Good(Some(self.number()?))),
            _ => {
                self.skip_value()?;
                Ok(Sem::Bad)
            }
        }
    }

    fn sem_opt_usize(&mut self) -> PR<Sem<Option<usize>>> {
        Ok(match self.sem_opt_f64()? {
            Sem::Good(n) => Sem::Good(n.map(|x| x as usize)),
            Sem::Bad => Sem::Bad,
        })
    }

    /// Unit-only enum: a bare string matched against the variant names.
    /// Any other shape (including the object form, whose payload arms are
    /// all empty for unit-only enums) is a semantic error.
    fn unit_enum<T>(&mut self, lookup: fn(&str) -> Option<T>) -> PR<Sem<T>> {
        match self.peek() {
            Some(b'"') => {
                self.string_value()?;
                Ok(match lookup(self.str_buf.as_str()) {
                    Some(v) => Sem::Good(v),
                    None => Sem::Bad,
                })
            }
            _ => {
                self.skip_value()?;
                Ok(Sem::Bad)
            }
        }
    }

    /// Generic object-field loop: caller guarantees `peek() == '{'`.
    /// `keymap` maps a decoded key to a field index (`usize::MAX` =
    /// unknown, which `body` must skip); `body` parses the value.
    fn fields<F>(&mut self, keymap: fn(&str) -> usize, mut body: F) -> PR<()>
    where
        F: FnMut(&mut Self, usize) -> PR<()>,
    {
        self.open()?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.key()?;
            let f = keymap(self.key_buf.as_str());
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(Reject);
            }
            self.pos += 1;
            self.skip_ws();
            body(self, f)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(Reject),
            }
        }
    }

    /// Payload-variant enum in object form. The oracle requires exactly
    /// one *distinct* key (duplicates collapse last-wins in the
    /// `BTreeMap`), and the tag must name a payload variant — unit-variant
    /// names or unknown tags are semantic errors. Caller guarantees
    /// `peek() == '{'`.
    fn enum_object<T>(
        &mut self,
        tagmap: fn(&str) -> Option<u8>,
        mut payload: impl FnMut(&mut Self, u8) -> PR<Sem<T>>,
    ) -> PR<Sem<T>> {
        self.open()?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            // Zero keys: "bad enum representation".
            self.pos += 1;
            self.depth -= 1;
            return Ok(Sem::Bad);
        }
        let mut first: Option<Option<u8>> = None;
        let mut multi = false;
        let mut val: Sem<T> = Sem::Bad;
        loop {
            self.skip_ws();
            self.key()?;
            let tag = tagmap(self.key_buf.as_str());
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(Reject);
            }
            self.pos += 1;
            self.skip_ws();
            match (first, tag) {
                (None, Some(t)) => {
                    first = Some(Some(t));
                    val = payload(self, t)?;
                }
                (None, None) => {
                    first = Some(None);
                    self.skip_value()?;
                }
                // Duplicate of the known tag: re-parse, last wins.
                (Some(Some(t0)), Some(t)) if t0 == t && !multi => {
                    val = payload(self, t)?;
                }
                // A second distinct key (or an unknown first key again):
                // the final map has ≥2 entries or an unknown tag — either
                // way semantic error, but keep consuming structurally.
                _ => {
                    multi = true;
                    self.skip_value()?;
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    break;
                }
                _ => return Err(Reject),
            }
        }
        Ok(if multi || matches!(first, Some(None)) { Sem::Bad } else { val })
    }

    // --- plan vocabulary ------------------------------------------------

    fn scan_method(&mut self) -> PR<Sem<ScanMethod>> {
        match self.peek() {
            Some(b'"') => {
                self.string_value()?;
                Ok(if self.str_buf.as_str() == "Seq" {
                    Sem::Good(ScanMethod::Seq)
                } else {
                    Sem::Bad
                })
            }
            Some(b'{') => self.enum_object(
                |t| if t == "Index" { Some(0) } else { None },
                |p, _| p.index_payload(),
            ),
            _ => {
                self.skip_value()?;
                Ok(Sem::Bad)
            }
        }
    }

    fn index_payload(&mut self) -> PR<Sem<ScanMethod>> {
        if self.peek() != Some(b'{') {
            self.skip_value()?;
            return Ok(Sem::Bad);
        }
        let mut index: Option<Sem<usize>> = None;
        let mut forward: Option<Sem<bool>> = None;
        self.fields(
            |k| match k {
                "index" => 0,
                "forward" => 1,
                _ => usize::MAX,
            },
            |p, f| {
                match f {
                    0 => index = Some(p.sem_usize()?),
                    1 => forward = Some(p.sem_bool()?),
                    _ => p.skip_value()?,
                }
                Ok(())
            },
        )?;
        Ok(match (index, forward) {
            (Some(Sem::Good(index)), Some(Sem::Good(forward))) => {
                Sem::Good(ScanMethod::Index { index, forward })
            }
            _ => Sem::Bad,
        })
    }

    fn operator(&mut self) -> PR<Sem<Operator>> {
        match self.peek() {
            Some(b'"') => {
                self.string_value()?;
                Ok(if self.str_buf.as_str() == "Materialize" {
                    Sem::Good(Operator::Materialize)
                } else {
                    Sem::Bad
                })
            }
            Some(b'{') => self.enum_object(
                |t| match t {
                    "Scan" => Some(0),
                    "Filter" => Some(1),
                    "Join" => Some(2),
                    "Hash" => Some(3),
                    "Sort" => Some(4),
                    "Aggregate" => Some(5),
                    "Limit" => Some(6),
                    _ => None,
                },
                |p, t| match t {
                    0 => p.scan_payload(),
                    1 => p.filter_payload(),
                    2 => p.join_payload(),
                    3 => p.hash_payload(),
                    4 => p.sort_payload(),
                    5 => p.aggregate_payload(),
                    _ => p.limit_payload(),
                },
            ),
            _ => {
                self.skip_value()?;
                Ok(Sem::Bad)
            }
        }
    }

    fn scan_payload(&mut self) -> PR<Sem<Operator>> {
        if self.peek() != Some(b'{') {
            self.skip_value()?;
            return Ok(Sem::Bad);
        }
        let mut table: Option<Sem<usize>> = None;
        let mut method: Option<Sem<ScanMethod>> = None;
        let mut predicate_col: Option<Sem<Option<usize>>> = None;
        self.fields(
            |k| match k {
                "table" => 0,
                "method" => 1,
                "predicate_col" => 2,
                _ => usize::MAX,
            },
            |p, f| {
                match f {
                    0 => table = Some(p.sem_usize()?),
                    1 => method = Some(p.scan_method()?),
                    2 => predicate_col = Some(p.sem_opt_usize()?),
                    _ => p.skip_value()?,
                }
                Ok(())
            },
        )?;
        Ok(match (table, method, predicate_col) {
            (Some(Sem::Good(table)), Some(Sem::Good(method)), Some(Sem::Good(predicate_col))) => {
                Sem::Good(Operator::Scan { table, method, predicate_col })
            }
            _ => Sem::Bad,
        })
    }

    fn filter_payload(&mut self) -> PR<Sem<Operator>> {
        if self.peek() != Some(b'{') {
            self.skip_value()?;
            return Ok(Sem::Bad);
        }
        let mut parallel: Option<Sem<bool>> = None;
        self.fields(
            |k| if k == "parallel" { 0 } else { usize::MAX },
            |p, f| {
                match f {
                    0 => parallel = Some(p.sem_bool()?),
                    _ => p.skip_value()?,
                }
                Ok(())
            },
        )?;
        Ok(match parallel {
            Some(Sem::Good(parallel)) => Sem::Good(Operator::Filter { parallel }),
            _ => Sem::Bad,
        })
    }

    fn join_payload(&mut self) -> PR<Sem<Operator>> {
        if self.peek() != Some(b'{') {
            self.skip_value()?;
            return Ok(Sem::Bad);
        }
        let mut algo: Option<Sem<JoinAlgorithm>> = None;
        let mut jtype: Option<Sem<JoinType>> = None;
        let mut parent_rel: Option<Sem<ParentRel>> = None;
        self.fields(
            |k| match k {
                "algo" => 0,
                "jtype" => 1,
                "parent_rel" => 2,
                _ => usize::MAX,
            },
            |p, f| {
                match f {
                    0 => {
                        algo = Some(p.unit_enum(|s| match s {
                            "NestedLoop" => Some(JoinAlgorithm::NestedLoop),
                            "Hash" => Some(JoinAlgorithm::Hash),
                            "Merge" => Some(JoinAlgorithm::Merge),
                            _ => None,
                        })?)
                    }
                    1 => {
                        jtype = Some(p.unit_enum(|s| match s {
                            "Inner" => Some(JoinType::Inner),
                            "Semi" => Some(JoinType::Semi),
                            "Anti" => Some(JoinType::Anti),
                            "Full" => Some(JoinType::Full),
                            _ => None,
                        })?)
                    }
                    2 => {
                        parent_rel = Some(p.unit_enum(|s| match s {
                            "None" => Some(ParentRel::None),
                            "Inner" => Some(ParentRel::Inner),
                            "Outer" => Some(ParentRel::Outer),
                            "Subquery" => Some(ParentRel::Subquery),
                            _ => None,
                        })?)
                    }
                    _ => p.skip_value()?,
                }
                Ok(())
            },
        )?;
        Ok(match (algo, jtype, parent_rel) {
            (Some(Sem::Good(algo)), Some(Sem::Good(jtype)), Some(Sem::Good(parent_rel))) => {
                Sem::Good(Operator::Join { algo, jtype, parent_rel })
            }
            _ => Sem::Bad,
        })
    }

    fn hash_payload(&mut self) -> PR<Sem<Operator>> {
        if self.peek() != Some(b'{') {
            self.skip_value()?;
            return Ok(Sem::Bad);
        }
        let mut buckets: Option<Sem<f64>> = None;
        let mut algo: Option<Sem<HashAlgorithm>> = None;
        self.fields(
            |k| match k {
                "buckets" => 0,
                "algo" => 1,
                _ => usize::MAX,
            },
            |p, f| {
                match f {
                    0 => buckets = Some(p.sem_f64()?),
                    1 => {
                        algo = Some(p.unit_enum(|s| match s {
                            "Linear" => Some(HashAlgorithm::Linear),
                            "Chained" => Some(HashAlgorithm::Chained),
                            _ => None,
                        })?)
                    }
                    _ => p.skip_value()?,
                }
                Ok(())
            },
        )?;
        Ok(match (buckets, algo) {
            (Some(Sem::Good(buckets)), Some(Sem::Good(algo))) => {
                Sem::Good(Operator::Hash { buckets, algo })
            }
            _ => Sem::Bad,
        })
    }

    fn sort_payload(&mut self) -> PR<Sem<Operator>> {
        if self.peek() != Some(b'{') {
            self.skip_value()?;
            return Ok(Sem::Bad);
        }
        let mut key: Option<Sem<usize>> = None;
        let mut method: Option<Sem<SortMethod>> = None;
        self.fields(
            |k| match k {
                "key" => 0,
                "method" => 1,
                _ => usize::MAX,
            },
            |p, f| {
                match f {
                    0 => key = Some(p.sem_usize()?),
                    1 => {
                        method = Some(p.unit_enum(|s| match s {
                            "Quicksort" => Some(SortMethod::Quicksort),
                            "TopN" => Some(SortMethod::TopN),
                            "External" => Some(SortMethod::External),
                            _ => None,
                        })?)
                    }
                    _ => p.skip_value()?,
                }
                Ok(())
            },
        )?;
        Ok(match (key, method) {
            (Some(Sem::Good(key)), Some(Sem::Good(method))) => {
                Sem::Good(Operator::Sort { key, method })
            }
            _ => Sem::Bad,
        })
    }

    fn aggregate_payload(&mut self) -> PR<Sem<Operator>> {
        if self.peek() != Some(b'{') {
            self.skip_value()?;
            return Ok(Sem::Bad);
        }
        let mut strategy: Option<Sem<AggStrategy>> = None;
        let mut partial: Option<Sem<bool>> = None;
        let mut op: Option<Sem<AggOp>> = None;
        self.fields(
            |k| match k {
                "strategy" => 0,
                "partial" => 1,
                "op" => 2,
                _ => usize::MAX,
            },
            |p, f| {
                match f {
                    0 => {
                        strategy = Some(p.unit_enum(|s| match s {
                            "Plain" => Some(AggStrategy::Plain),
                            "Sorted" => Some(AggStrategy::Sorted),
                            "Hashed" => Some(AggStrategy::Hashed),
                            _ => None,
                        })?)
                    }
                    1 => partial = Some(p.sem_bool()?),
                    2 => {
                        op = Some(p.unit_enum(|s| match s {
                            "Count" => Some(AggOp::Count),
                            "Sum" => Some(AggOp::Sum),
                            "Avg" => Some(AggOp::Avg),
                            "Min" => Some(AggOp::Min),
                            "Max" => Some(AggOp::Max),
                            _ => None,
                        })?)
                    }
                    _ => p.skip_value()?,
                }
                Ok(())
            },
        )?;
        Ok(match (strategy, partial, op) {
            (Some(Sem::Good(strategy)), Some(Sem::Good(partial)), Some(Sem::Good(op))) => {
                Sem::Good(Operator::Aggregate { strategy, partial, op })
            }
            _ => Sem::Bad,
        })
    }

    fn limit_payload(&mut self) -> PR<Sem<Operator>> {
        if self.peek() != Some(b'{') {
            self.skip_value()?;
            return Ok(Sem::Bad);
        }
        let mut count: Option<Sem<f64>> = None;
        self.fields(
            |k| if k == "count" { 0 } else { usize::MAX },
            |p, f| {
                match f {
                    0 => count = Some(p.sem_f64()?),
                    _ => p.skip_value()?,
                }
                Ok(())
            },
        )?;
        Ok(match count {
            Some(Sem::Good(count)) => Sem::Good(Operator::Limit { count }),
            _ => Sem::Bad,
        })
    }

    fn node_est(&mut self) -> PR<Sem<NodeEst>> {
        if self.peek() != Some(b'{') {
            self.skip_value()?;
            return Ok(Sem::Bad);
        }
        let mut width: Option<Sem<f64>> = None;
        let mut rows: Option<Sem<f64>> = None;
        let mut buffers: Option<Sem<f64>> = None;
        let mut ios: Option<Sem<f64>> = None;
        let mut total_cost: Option<Sem<f64>> = None;
        let mut selectivity: Option<Sem<f64>> = None;
        self.fields(
            |k| match k {
                "width" => 0,
                "rows" => 1,
                "buffers" => 2,
                "ios" => 3,
                "total_cost" => 4,
                "selectivity" => 5,
                _ => usize::MAX,
            },
            |p, f| {
                let slot = match f {
                    0 => &mut width,
                    1 => &mut rows,
                    2 => &mut buffers,
                    3 => &mut ios,
                    4 => &mut total_cost,
                    5 => &mut selectivity,
                    _ => {
                        p.skip_value()?;
                        return Ok(());
                    }
                };
                *slot = Some(p.sem_f64()?);
                Ok(())
            },
        )?;
        Ok(match (width, rows, buffers, ios, total_cost, selectivity) {
            (
                Some(Sem::Good(width)),
                Some(Sem::Good(rows)),
                Some(Sem::Good(buffers)),
                Some(Sem::Good(ios)),
                Some(Sem::Good(total_cost)),
                Some(Sem::Good(selectivity)),
            ) => Sem::Good(NodeEst { width, rows, buffers, ios, total_cost, selectivity }),
            _ => Sem::Bad,
        })
    }

    fn node_actual(&mut self) -> PR<Sem<NodeActual>> {
        if self.peek() != Some(b'{') {
            self.skip_value()?;
            return Ok(Sem::Bad);
        }
        let mut rows: Option<Sem<f64>> = None;
        let mut latency_ms: Option<Sem<f64>> = None;
        let mut self_latency_ms: Option<Sem<f64>> = None;
        self.fields(
            |k| match k {
                "rows" => 0,
                "latency_ms" => 1,
                "self_latency_ms" => 2,
                _ => usize::MAX,
            },
            |p, f| {
                let slot = match f {
                    0 => &mut rows,
                    1 => &mut latency_ms,
                    2 => &mut self_latency_ms,
                    _ => {
                        p.skip_value()?;
                        return Ok(());
                    }
                };
                *slot = Some(p.sem_f64()?);
                Ok(())
            },
        )?;
        Ok(match (rows, latency_ms, self_latency_ms) {
            (Some(Sem::Good(rows)), Some(Sem::Good(latency_ms)), Some(Sem::Good(self_latency_ms))) => {
                Sem::Good(NodeActual { rows, latency_ms, self_latency_ms })
            }
            _ => Sem::Bad,
        })
    }

    // --- plan nodes -----------------------------------------------------

    /// Parses one `PlanNode` object, pushing its subtree into the scratch
    /// plan in post order. On `Good` the node's index is returned and its
    /// direct-children indices have been consumed from `kids`; on `Bad`
    /// both scratch arrays are truncated back to this node's entry marks.
    fn plan_node(&mut self) -> PR<Sem<usize>> {
        let node_mark = self.sp.len();
        let kid_mark = self.kids.len();
        if self.peek() != Some(b'{') {
            self.skip_value()?;
            return Ok(Sem::Bad);
        }
        let mut op: Option<Sem<Operator>> = None;
        let mut est: Option<Sem<NodeEst>> = None;
        let mut actual: Option<Sem<NodeActual>> = None;
        let mut learned_rows: Option<Sem<Option<f64>>> = None;
        let mut concurrency: Option<Sem<f64>> = None;
        let mut children: Option<Sem<()>> = None;
        self.fields(
            |k| match k {
                "op" => 0,
                "est" => 1,
                "actual" => 2,
                "learned_rows" => 3,
                "concurrency" => 4,
                "children" => 5,
                _ => usize::MAX,
            },
            |p, f| {
                match f {
                    0 => op = Some(p.operator()?),
                    1 => est = Some(p.node_est()?),
                    2 => actual = Some(p.node_actual()?),
                    3 => learned_rows = Some(p.sem_opt_f64()?),
                    4 => concurrency = Some(p.sem_f64()?),
                    5 => children = Some(p.children_field(node_mark, kid_mark)?),
                    _ => p.skip_value()?,
                }
                Ok(())
            },
        )?;
        // `learned_rows` and `concurrency` carry #[serde(default)].
        let learned_rows = learned_rows.unwrap_or(Sem::Good(None));
        let concurrency = concurrency.unwrap_or(Sem::Good(1.0));
        match (op, est, actual, learned_rows, concurrency, children) {
            (
                Some(Sem::Good(op)),
                Some(Sem::Good(est)),
                Some(Sem::Good(actual)),
                Sem::Good(learned_rows),
                Sem::Good(concurrency),
                Some(Sem::Good(())),
            ) => {
                let node = PlanNode {
                    op,
                    est,
                    actual,
                    learned_rows,
                    concurrency,
                    children: Vec::new(),
                };
                let idx = self.sp.push_node(node, &self.kids[kid_mark..]);
                self.kids.truncate(kid_mark);
                Ok(Sem::Good(idx))
            }
            _ => {
                self.sp.truncate(node_mark);
                self.kids.truncate(kid_mark);
                Ok(Sem::Bad)
            }
        }
    }

    /// Parses a `children` array. Between this node's entry marks and
    /// here, the only scratch growth is a previous occurrence of this same
    /// field, so truncating to the marks implements last-wins for
    /// duplicate `children` keys (and is a no-op on the first occurrence).
    fn children_field(&mut self, node_mark: usize, kid_mark: usize) -> PR<Sem<()>> {
        self.sp.truncate(node_mark);
        self.kids.truncate(kid_mark);
        if self.peek() != Some(b'[') {
            self.skip_value()?;
            return Ok(Sem::Bad);
        }
        self.open()?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Sem::Good(()));
        }
        let mut bad = false;
        loop {
            self.skip_ws();
            if bad {
                self.skip_value()?;
            } else {
                match self.plan_node()? {
                    Sem::Good(idx) => self.kids.push(idx),
                    Sem::Bad => {
                        // A bad element poisons the whole Vec (the oracle's
                        // `collect::<Result<_>>` fails); drop the siblings
                        // already in scratch and validate the rest
                        // structurally only.
                        self.sp.truncate(node_mark);
                        self.kids.truncate(kid_mark);
                        bad = true;
                    }
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(if bad { Sem::Bad } else { Sem::Good(()) });
                }
                _ => return Err(Reject),
            }
        }
    }

    // --- request envelope -----------------------------------------------

    /// `op` must be the string `"admit_predict"`; any other verb is
    /// ineligible for the fast path (not an error — the oracle handles it).
    fn op_verb(&mut self) -> PR<Sem<bool>> {
        match self.peek() {
            Some(b'"') => {
                self.string_value()?;
                Ok(Sem::Good(self.str_buf.as_str() == "admit_predict"))
            }
            _ => {
                self.skip_value()?;
                Ok(Sem::Bad)
            }
        }
    }

    /// Tenant fingerprints cross the wire as hex strings; replicate
    /// `decode_fingerprint` exactly (`u64::from_str_radix(s, 16)`).
    fn tenant(&mut self) -> PR<Sem<u64>> {
        match self.peek() {
            Some(b'"') => {
                self.string_value()?;
                Ok(match u64::from_str_radix(self.str_buf.as_str(), 16) {
                    Ok(fp) => Sem::Good(fp),
                    Err(_) => Sem::Bad,
                })
            }
            _ => {
                self.skip_value()?;
                Ok(Sem::Bad)
            }
        }
    }

    /// Parses the whole request line. `Ok(Some(tenant))` = eligible and
    /// fully valid (plan in scratch, unsealed); `Ok(None)` = structurally
    /// valid but ineligible; `Err` = structural error. The latter two are
    /// indistinguishable to the caller — both fall back.
    fn request(&mut self) -> PR<Option<Option<u64>>> {
        self.skip_ws();
        if self.peek() != Some(b'{') {
            return Ok(None);
        }
        let mut v: Option<Sem<f64>> = None;
        let mut op: Option<Sem<bool>> = None;
        let mut keep: Option<Sem<bool>> = None;
        let mut tenant: Option<Sem<u64>> = None;
        let mut plan: Option<Sem<usize>> = None;
        self.open()?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
        } else {
            loop {
                self.skip_ws();
                self.key()?;
                let f = match self.key_buf.as_str() {
                    "v" => 0,
                    "op" => 1,
                    "keep" => 2,
                    "tenant" => 3,
                    "plan" => 4,
                    _ => usize::MAX,
                };
                self.skip_ws();
                if self.peek() != Some(b':') {
                    return Err(Reject);
                }
                self.pos += 1;
                self.skip_ws();
                match f {
                    0 => v = Some(self.sem_f64()?),
                    1 => op = Some(self.op_verb()?),
                    2 => keep = Some(self.sem_bool()?),
                    3 => tenant = Some(self.tenant()?),
                    4 => {
                        // Last-wins for duplicate `plan` keys: the scratch
                        // holds only this occurrence's nodes.
                        self.sp.clear();
                        self.kids.clear();
                        plan = Some(self.plan_node()?);
                    }
                    _ => self.skip_value()?,
                }
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        self.depth -= 1;
                        break;
                    }
                    _ => return Err(Reject),
                }
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Reject);
        }
        let ten = match tenant {
            None => None,
            Some(Sem::Good(fp)) => Some(fp),
            Some(Sem::Bad) => return Ok(None),
        };
        let eligible = matches!(v, Some(Sem::Good(x)) if x == VERSION as f64)
            && matches!(op, Some(Sem::Good(true)))
            && matches!(keep, None | Some(Sem::Good(false)))
            && matches!(plan, Some(Sem::Good(_)));
        Ok(if eligible { Some(ten) } else { None })
    }
}

#[cfg(test)]
mod tests {
    use super::super::proto::{self, Request};
    use super::*;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    /// The recursive oracle over a bare plan document: guarded parse +
    /// `from_value`, exactly what the slow path runs under the hood.
    fn oracle_plan(doc: &str) -> Option<PlanNode> {
        let v = proto::parse_guarded(doc).ok()?;
        serde_json::from_value::<PlanNode>(v).ok()
    }

    fn assert_scratch_eq(got: &ScratchPlan, tree: &PlanNode, ctx: &str) {
        let mut want = ScratchPlan::new();
        want.rebuild_from_tree(tree);
        assert_eq!(got.len(), want.len(), "node count on {ctx}");
        assert_eq!(got.kinds(), want.kinds(), "kinds on {ctx}");
        assert_eq!(got.nodes(), want.nodes(), "node content on {ctx}");
        assert_eq!(got.shard_hash(), want.shard_hash(), "shard hash on {ctx}");
        for k in 0..got.len() {
            assert_eq!(
                got.lowering().children_of(k),
                want.lowering().children_of(k),
                "children of {k} on {ctx}"
            );
            assert_eq!(
                got.lowering().height_of(k),
                want.lowering().height_of(k),
                "height of {k} on {ctx}"
            );
        }
    }

    /// Fast decoder and oracle must agree on accept/reject; on accept the
    /// scratch CSR must equal the lowering of the oracle's tree.
    fn check_doc(rs: &mut RequestScratch, doc: &str) {
        let fast = rs.decode_plan_doc(doc);
        match oracle_plan(doc) {
            Some(tree) => {
                assert!(fast, "fast decoder rejected a doc the oracle accepts: {doc}");
                assert_scratch_eq(rs.plan(), &tree, doc);
            }
            None => assert!(!fast, "fast decoder accepted a doc the oracle rejects: {doc}"),
        }
    }

    /// Request lines: `Ready` must coincide with "oracle decodes an
    /// eligible one-shot admit_predict whose plan passes the arity check",
    /// and the decoded plan/tenant must match.
    fn check_line(rs: &mut RequestScratch, line: &str) {
        let fast = rs.decode(line);
        let oracle = proto::decode_request(line);
        match (fast, oracle) {
            (
                FastDecode::Ready { tenant },
                Ok(Request::AdmitPredict { plan, keep, tenant: want_tenant }),
            ) => {
                assert!(!keep, "fast path must never accept keep:true: {line}");
                assert_eq!(tenant, want_tenant, "tenant diverged on {line}");
                assert!(super::super::validate_plan(&plan).is_ok(), "arity gate leaked: {line}");
                assert_scratch_eq(rs.plan(), &plan, line);
            }
            (FastDecode::Ready { .. }, other) => {
                panic!("fast decoder accepted a line the oracle rejects: {line} ({other:?})")
            }
            (FastDecode::Fallback, _) => {} // fallback is always safe
        }
    }

    fn leaf() -> &'static str {
        r#"{"op":{"Scan":{"table":0,"method":"Seq","predicate_col":null}},"est":{"width":8,"rows":100,"buffers":0,"ios":10,"total_cost":25.5,"selectivity":1},"actual":{"rows":90,"latency_ms":1.5,"self_latency_ms":1.5},"children":[]}"#
    }

    fn wrap_filter(inner: &str) -> String {
        format!(
            r#"{{"op":{{"Filter":{{"parallel":false}}}},"est":{{"width":8,"rows":50,"buffers":0,"ios":0,"total_cost":30,"selectivity":0.5}},"actual":{{"rows":45,"latency_ms":2,"self_latency_ms":0.5}},"children":[{inner}]}}"#
        )
    }

    #[test]
    fn round_trips_generated_workload_plans() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 16, 9);
        let mut rs = RequestScratch::new();
        for plan in &ds.plans {
            let doc = serde_json::to_string(&plan.root).unwrap();
            check_doc(&mut rs, &doc);
            let line = proto::encode_request(&Request::AdmitPredict {
                plan: Box::new(plan.root.clone()),
                keep: false,
                tenant: None,
            });
            assert!(
                matches!(rs.decode(&line), FastDecode::Ready { tenant: None }),
                "wire round-trip must take the fast path"
            );
            assert_scratch_eq(rs.plan(), &plan.root, &line);
            check_line(&mut rs, &line);
        }
    }

    #[test]
    fn request_envelope_gates_eligibility() {
        let plan_doc = wrap_filter(leaf());
        let mut rs = RequestScratch::new();
        // Valid with explicit tenant, odd key order, unknown keys, ws.
        let line = format!(
            " {{ \"tenant\" : \"00ff\" , \"plan\" : {plan_doc}, \"x_unknown\": [1, {{}}], \"op\": \"admit_predict\", \"v\": 1 }} "
        );
        assert_eq!(rs.decode(&line), FastDecode::Ready { tenant: Some(0xff) });
        check_line(&mut rs, &line);
        // Each of these must fall back (wrong verb / version / keep /
        // tenant / missing plan), even though some are valid requests.
        for line in [
            format!(r#"{{"v":1,"op":"admit_predict","plan":{plan_doc},"keep":true}}"#),
            format!(r#"{{"v":1,"op":"admit","plan":{plan_doc}}}"#),
            format!(r#"{{"v":2,"op":"admit_predict","plan":{plan_doc}}}"#),
            format!(r#"{{"v":1,"op":"admit_predict","plan":{plan_doc},"tenant":"zz"}}"#),
            format!(r#"{{"v":1,"op":"admit_predict","plan":{plan_doc},"tenant":null}}"#),
            format!(r#"{{"v":1,"op":"admit_predict","plan":{plan_doc},"keep":1}}"#),
            format!(r#"{{"op":"admit_predict","plan":{plan_doc}}}"#),
            r#"{"v":1,"op":"stats"}"#.to_string(),
            r#"{"v":1,"op":"admit_predict"}"#.to_string(),
            format!(r#"{{"v":1,"op":"admit_predict","plan":{plan_doc}}} trailing"#),
            format!(r#"[{{"v":1,"op":"admit_predict","plan":{plan_doc}}}]"#),
            String::new(),
        ] {
            assert_eq!(rs.decode(&line), FastDecode::Fallback, "line: {line}");
            check_line(&mut rs, &line);
        }
    }

    #[test]
    fn duplicate_keys_are_last_wins_at_every_level() {
        let mut rs = RequestScratch::new();
        let leaf = leaf();
        let est = r#"{"width":8,"rows":50,"buffers":0,"ios":0,"total_cost":30,"selectivity":0.5}"#;
        let act = r#"{"rows":45,"latency_ms":2,"self_latency_ms":0.5}"#;
        for doc in [
            // A later duplicate rescues a bad `op`; a later bad one poisons.
            format!(r#"{{"op":5,"op":{{"Filter":{{"parallel":true}}}},"est":{est},"actual":{act},"children":[{leaf}]}}"#),
            format!(r#"{{"op":{{"Filter":{{"parallel":true}}}},"op":5,"est":{est},"actual":{act},"children":[{leaf}]}}"#),
            // Duplicate children arrays: last array is the real child list.
            format!(r#"{{"op":{{"Filter":{{"parallel":true}}}},"est":{est},"actual":{act},"children":[],"children":[{leaf}]}}"#),
            format!(r#"{{"op":{{"Filter":{{"parallel":true}}}},"est":{est},"actual":{act},"children":[{leaf}],"children":[]}}"#),
            format!(r#"{{"op":{{"Filter":{{"parallel":true}}}},"est":{est},"actual":{act},"children":[{leaf}],"children":"no"}}"#),
            // Duplicate scalar field inside a payload struct.
            format!(r#"{{"op":{{"Filter":{{"parallel":1,"parallel":false}}}},"est":{est},"actual":{act},"children":[{leaf}]}}"#),
            format!(r#"{{"op":{{"Filter":{{"parallel":false,"parallel":1}}}},"est":{est},"actual":{act},"children":[{leaf}]}}"#),
            // Duplicate est objects.
            format!(r#"{{"op":{{"Filter":{{"parallel":true}}}},"est":0,"est":{est},"actual":{act},"children":[{leaf}]}}"#),
            // Duplicate enum tag: last payload wins.
            format!(r#"{{"op":{{"Filter":{{"parallel":false}},"Filter":{{"parallel":true}}}},"est":{est},"actual":{act},"children":[{leaf}]}}"#),
            format!(r#"{{"op":{{"Filter":0,"Filter":{{"parallel":true}}}},"est":{est},"actual":{act},"children":[{leaf}]}}"#),
            format!(r#"{{"op":{{"Filter":{{"parallel":true}},"Filter":0}},"est":{est},"actual":{act},"children":[{leaf}]}}"#),
        ] {
            check_doc(&mut rs, &doc);
        }
        // Duplicate `plan` at the request level: last one wins.
        let good = wrap_filter(leaf);
        let line =
            format!(r#"{{"v":1,"op":"admit_predict","plan":{leaf},"plan":{good}}}"#);
        assert!(matches!(rs.decode(&line), FastDecode::Ready { tenant: None }));
        assert_eq!(rs.plan().len(), 2, "scratch must hold only the second plan");
        check_line(&mut rs, &line);
        let line =
            format!(r#"{{"v":1,"op":"admit_predict","plan":{good},"plan":7}}"#);
        assert_eq!(rs.decode(&line), FastDecode::Fallback);
        check_line(&mut rs, &line);
    }

    #[test]
    fn enum_representations_match_the_derive() {
        let mut rs = RequestScratch::new();
        let est = r#"{"width":1,"rows":1,"buffers":0,"ios":0,"total_cost":1,"selectivity":1}"#;
        let act = r#"{"rows":1,"latency_ms":1,"self_latency_ms":1}"#;
        let node = |op: &str| format!(r#"{{"op":{op},"est":{est},"actual":{act},"children":[]}}"#);
        for op in [
            r#""Materialize""#,                                   // unit string form: accept
            r#"{"Materialize":null}"#,                            // unit tag in object form: reject
            r#"{"Materialize":{}}"#,                              // ditto
            r#""Limit""#,                                         // payload variant as string: reject
            r#"{"Limit":{"count":3}}"#,                           // accept
            r#"{"Limit":{"count":3},"Filter":{"parallel":true}}"#, // two distinct keys: reject
            r#"{}"#,                                              // zero keys: reject
            r#"{"Bogus":1}"#,                                     // unknown tag: reject
            r#"{"Bogus":1,"Bogus":2}"#,                           // unknown tag, deduped: reject
            r#"{"Limit":{"count":3,"extra":9}}"#,                 // unknown payload field: ignored
            r#"{"Limit":{}}"#,                                    // missing required field: reject
            r#"{"Sort":{"key":2,"method":"TopN"}}"#,              // accept
            r#"{"Sort":{"key":2.9,"method":"TopN"}}"#,            // fractional usize: `as` cast
            r#"{"Sort":{"key":-3,"method":"TopN"}}"#,             // negative usize: `as` cast → 0
            r#"{"Sort":{"key":2,"method":"External","method":"Quicksort"}}"#,
            r#"{"Scan":{"table":1,"method":{"Index":{"index":0,"forward":true}},"predicate_col":2}}"#,
            r#"{"Scan":{"table":1,"method":{"Seq":null},"predicate_col":null}}"#, // unit tag object form
            r#"{"Scan":{"table":1,"method":"Index","predicate_col":null}}"#, // payload tag as string
            r#"{"Scan":{"table":1,"method":"Seq"}}"#,             // missing Option field is an error
            r#"{"Aggregate":{"strategy":"Hashed","partial":true,"op":"Sum"}}"#,
            r#"{"Join":{"algo":"Merge","jtype":"Semi","parent_rel":"None"}}"#,
            r#"{"Join":{"algo":"Merge","jtype":"Semi","parent_rel":"Elsewhere"}}"#,
            r#"{"Hash":{"buckets":1024.5,"algo":"Chained"}}"#,
        ] {
            check_doc(&mut rs, &node(op));
        }
    }

    #[test]
    fn escapes_and_hostile_strings_match_the_oracle() {
        let mut rs = RequestScratch::new();
        let est = r#"{"width":1,"rows":1,"buffers":0,"ios":0,"total_cost":1,"selectivity":1}"#;
        let act = r#"{"rows":1,"latency_ms":1,"self_latency_ms":1}"#;
        for doc in [
            // Escaped key: "op" decodes to "op".
            format!(r#"{{"op":"Materialize","est":{est},"actual":{act},"children":[]}}"#),
            // `from_str_radix` accepts a leading `+`: "\u+041" is 'A'...
            format!(r#"{{"op":"M\u+061terialize","est":{est},"actual":{act},"children":[]}}"#),
            // ...but a surrogate code point rejects.
            format!(r#"{{"op":"M\ud800aterialize","est":{est},"actual":{act},"children":[]}}"#),
            // Truncated \u escape.
            format!(r#"{{"op":"Materialize","est":{est},"actual":{act},"children":[],"x":"\u00"#),
            // Unknown escape / uppercase \U.
            format!(r#"{{"op":"Materialize","est":{est},"actual":{act},"children":[],"x":"\q"}}"#),
            format!(r#"{{"op":"Materialize","est":{est},"actual":{act},"children":[],"x":"\U0041"}}"#),
            // Raw control byte and raw multi-byte UTF-8 inside a string.
            format!("{{\"op\":\"Materialize\",\"est\":{est},\"actual\":{act},\"children\":[],\"x\":\"a\u{1}b\"}}"),
            format!(r#"{{"op":"Materialize","est":{est},"actual":{act},"children":[],"xé":"é\n\t\"\\"}}"#),
            // Unterminated string.
            format!(r#"{{"op":"Materialize","est":{est},"actual":{act},"children":[],"x":"oops"#),
            // Escape-heavy unknown keys are skipped but still validated.
            format!(r#"{{"op":"Materialize","est":{est},"actual":{act},"children":[],"\n\t\"\\\/\b\f":null}}"#),
        ] {
            check_doc(&mut rs, &doc);
        }
    }

    #[test]
    fn hostile_numbers_and_keywords_match_the_oracle() {
        let mut rs = RequestScratch::new();
        let act = r#"{"rows":1,"latency_ms":1,"self_latency_ms":1}"#;
        let with_width = |w: &str| {
            format!(
                r#"{{"op":"Materialize","est":{{"width":{w},"rows":1,"buffers":0,"ios":0,"total_cost":1,"selectivity":1}},"actual":{act},"children":[]}}"#
            )
        };
        for w in ["1e999", "-0", "2.5e-3", "1.", "1-2", "--1", "-", "1e", "1..2", "1e+5", "01"] {
            check_doc(&mut rs, &with_width(w));
        }
        for doc in [
            r#"tru"#.to_string(),
            r#"nul"#.to_string(),
            with_width("1").replace(":[]", ":[],\"x\":fals"),
            with_width("1").replace(":[]", ":[],\"x\":truething"),
            with_width("1") + " \t\r\n",
            with_width("1") + "x",
        ] {
            check_doc(&mut rs, &doc);
        }
    }

    #[test]
    fn nesting_bomb_rejects_without_recursing() {
        let mut rs = RequestScratch::new();
        let mut doc = leaf().to_string();
        for _ in 0..600 {
            doc = wrap_filter(&doc);
        }
        check_doc(&mut rs, &doc); // both sides reject (depth > 512)
        let line = format!(r#"{{"v":1,"op":"admit_predict","plan":{doc}}}"#);
        assert_eq!(rs.decode(&line), FastDecode::Fallback);
        // A deep-but-legal chain is accepted and lowered correctly.
        let mut doc = leaf().to_string();
        for _ in 0..100 {
            doc = wrap_filter(&doc);
        }
        check_doc(&mut rs, &doc);
        assert_eq!(rs.plan().len(), 101);
    }

    #[test]
    fn arity_violations_fall_back_to_the_oracle_path() {
        let mut rs = RequestScratch::new();
        // A Join with one child decodes fine (`from_value` has no arity
        // check) but must not take the fast path: the oracle path owns the
        // `validate_plan` error reply.
        let join = format!(
            r#"{{"op":{{"Join":{{"algo":"Hash","jtype":"Inner","parent_rel":"None"}}}},"est":{{"width":1,"rows":1,"buffers":0,"ios":0,"total_cost":1,"selectivity":1}},"actual":{{"rows":1,"latency_ms":1,"self_latency_ms":1}},"children":[{}]}}"#,
            leaf()
        );
        assert!(rs.decode_plan_doc(&join), "doc itself decodes");
        let line = format!(r#"{{"v":1,"op":"admit_predict","plan":{join}}}"#);
        assert_eq!(rs.decode(&line), FastDecode::Fallback);
        check_line(&mut rs, &line);
    }

    #[test]
    fn steady_state_decode_is_allocation_free() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 8, 33);
        let mut rs = RequestScratch::new();
        let lines: Vec<String> = ds
            .plans
            .iter()
            .map(|p| {
                proto::encode_request(&Request::AdmitPredict {
                    plan: Box::new(p.root.clone()),
                    keep: false,
                    tenant: Some(0xabcd),
                })
            })
            .collect();
        // Warm up: buffers grow to their steady-state capacity.
        for line in &lines {
            assert!(matches!(rs.decode(line), FastDecode::Ready { .. }));
        }
        let before = crate::alloc::thread_alloc_count();
        for _ in 0..3 {
            for line in &lines {
                assert!(matches!(rs.decode(line), FastDecode::Ready { .. }));
            }
        }
        let delta = crate::alloc::thread_alloc_count() - before;
        assert_eq!(delta, 0, "warm fast decode must not allocate");
    }
}
