//! TAM — the Tuned Analytic Model (Wu et al. \[13\]).
//!
//! The optimizer already decomposes its cost estimate into units (pages
//! read sequentially, pages read randomly, tuples processed, operator
//! evaluations, …). TAM's premise is that latency is the same linear
//! combination with *hardware-true* coefficients: run calibration queries,
//! regress observed latency on the cost components, and predict with the
//! calibrated coefficients. The model is entirely human-engineered apart
//! from the handful of tuned coefficients — which is exactly why it cannot
//! express regime switches (spills, cold caches) or operator interactions.
//!
//! Per the paper's footnote, our TAM uses the optimizer's cardinality
//! estimates directly (no sampling optimization).

use crate::linreg::LinearModel;
use crate::LatencyModel;
use qpp_plansim::operators::{OpKind, Operator, ScanMethod, SortMethod};
use qpp_plansim::plan::{Plan, PlanNode};

/// Number of calibrated cost components.
pub const COMPONENTS: usize = 9;

/// Aggregates a plan into its optimizer cost components.
///
/// `[seq pages, random pages, tuples out, index tuples, join input tuples,
///   sort comparisons, hash tuples, spill I/Os, agg inputs]`
pub fn cost_components(plan: &Plan) -> Vec<f64> {
    let mut c = vec![0.0f64; COMPONENTS];
    plan.root.visit_postorder(&mut |n: &PlanNode| {
        c[2] += n.est.rows; // every operator emits tuples
        match &n.op {
            Operator::Scan { method, .. } => match method {
                ScanMethod::Seq => c[0] += n.est.ios,
                ScanMethod::Index { .. } => {
                    c[1] += n.est.ios;
                    c[3] += n.est.rows;
                }
            },
            Operator::Join { .. } => {
                for ch in &n.children {
                    c[4] += ch.est.rows;
                }
                c[7] += n.est.ios;
            }
            Operator::Sort { method, .. } => {
                let rows = n.children[0].est.rows.max(2.0);
                let k = match method {
                    SortMethod::TopN => n.est.rows.max(2.0),
                    _ => rows,
                };
                c[5] += rows * k.log2();
                c[7] += n.est.ios;
            }
            Operator::Hash { .. } => {
                c[6] += n.children[0].est.rows;
                c[7] += n.est.ios;
            }
            Operator::Aggregate { .. } => {
                c[8] += n.children[0].est.rows;
                c[7] += n.est.ios;
            }
            Operator::Materialize => {
                c[7] += n.est.ios;
            }
            Operator::Filter { .. } | Operator::Limit { .. } => {}
        }
    });
    c
}

/// The calibrated cost model.
#[derive(Debug, Clone, Default)]
pub struct TamModel {
    model: Option<LinearModel>,
}

impl TamModel {
    /// Creates an uncalibrated model.
    pub fn new() -> TamModel {
        TamModel { model: None }
    }

    /// The calibrated coefficients (ms per cost unit), if fitted.
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.model.as_ref().map(|m| m.weights.as_slice())
    }
}

impl LatencyModel for TamModel {
    fn name(&self) -> &'static str {
        "TAM"
    }

    fn fit(&mut self, plans: &[&Plan]) {
        assert!(!plans.is_empty(), "TAM needs calibration queries");
        let x: Vec<Vec<f64>> = plans.iter().map(|p| cost_components(p)).collect();
        let y: Vec<f64> = plans.iter().map(|p| p.latency_ms()).collect();
        self.model = Some(LinearModel::fit(&x, &y, 1e-3));
    }

    fn predict(&self, plan: &Plan) -> f64 {
        let m = self.model.as_ref().expect("TAM must be calibrated before prediction");
        m.predict(&cost_components(plan)).max(0.0)
    }
}

/// Counts how many operators of each family appear (used in reports).
pub fn operator_histogram(plan: &Plan) -> [usize; OpKind::ALL.len()] {
    let mut h = [0usize; OpKind::ALL.len()];
    plan.root.visit_postorder(&mut |n| h[n.op.kind().index()] += 1);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    #[test]
    fn components_are_nonnegative_and_populated() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 10, 1);
        for p in &ds.plans {
            let c = cost_components(p);
            assert_eq!(c.len(), COMPONENTS);
            assert!(c.iter().all(|v| *v >= 0.0));
            assert!(c[2] > 0.0, "tuple component must be positive");
        }
    }

    #[test]
    fn calibration_then_prediction_is_finite_and_positive() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 60, 2);
        let refs: Vec<&Plan> = ds.plans.iter().collect();
        let mut tam = TamModel::new();
        tam.fit(&refs[..50]);
        for p in &refs[50..] {
            let pred = tam.predict(p);
            assert!(pred.is_finite() && pred >= 0.0);
        }
    }

    #[test]
    fn tam_beats_a_constant_predictor_on_train() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 80, 3);
        let refs: Vec<&Plan> = ds.plans.iter().collect();
        let mut tam = TamModel::new();
        tam.fit(&refs);
        let actual: Vec<f64> = refs.iter().map(|p| p.latency_ms()).collect();
        let mean = actual.iter().sum::<f64>() / actual.len() as f64;
        let tam_sse: f64 = refs
            .iter()
            .zip(&actual)
            .map(|(p, a)| {
                let e = tam.predict(p) - a;
                e * e
            })
            .sum();
        let const_sse: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
        assert!(tam_sse < const_sse, "tam {tam_sse} vs const {const_sse}");
    }

    #[test]
    #[should_panic(expected = "calibrated")]
    fn predict_before_fit_panics() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 1, 4);
        let tam = TamModel::new();
        let _ = tam.predict(&ds.plans[0]);
    }
}
