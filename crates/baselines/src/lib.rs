//! # qpp-baselines — prior query-performance-prediction approaches
//!
//! The three comparison techniques of the paper's §6 "Evaluation
//! techniques", reimplemented with the feature-access rules their source
//! papers describe (hand-picked features; no learned inter-operator
//! vectors):
//!
//! * [`tam::TamModel`] — **TAM**, the tuned analytic/optimizer cost model
//!   of Wu et al. \[13\]: per-cost-unit coefficients calibrated by least
//!   squares, then latency predicted as a linear combination of the
//!   optimizer's cost components.
//! * [`svm::SvmModel`] — **SVM**, the operator-level ε-SVR models of
//!   Akdere et al. \[4\] with their plan-level fallback heuristic. Operator
//!   models see hand-picked per-operator features plus their children's
//!   *predicted latencies* (a scalar — not QPPNet's learned data vectors).
//! * [`rbf::RbfModel`] — **RBF**, resource-based features fed to MART
//!   (gradient-boosted regression trees), after Li et al. \[25\], with the
//!   human-derived combination rule "query latency = Σ operator self
//!   times".
//!
//! All models implement [`LatencyModel`] so the benchmark harness can
//! treat them, and QPPNet, uniformly.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cart;
pub mod features;
pub mod linreg;
pub mod rbf;
pub mod svm;
pub mod svr;
pub mod tam;

use qpp_plansim::plan::Plan;

/// A trainable query-latency predictor.
pub trait LatencyModel {
    /// Short display name ("TAM", "SVM", "RBF", "QPP Net").
    fn name(&self) -> &'static str;

    /// Fits the model on executed training plans.
    fn fit(&mut self, plans: &[&Plan]);

    /// Predicts the latency of one plan, in milliseconds.
    fn predict(&self, plan: &Plan) -> f64;

    /// Predicts latencies for many plans (default: one by one).
    fn predict_batch(&self, plans: &[&Plan]) -> Vec<f64> {
        plans.iter().map(|p| self.predict(p)).collect()
    }
}
