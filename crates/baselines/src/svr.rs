//! ε-insensitive support vector regression, trained in the primal by
//! stochastic subgradient descent (Pegasos-style), with optional random
//! Fourier features approximating an RBF kernel.
//!
//! This is the regression machinery behind the Akdere et al. \[4\] baseline.
//! Inputs and targets are standardized internally; with `rff_dims > 0`,
//! inputs are lifted through `z(x) = √(2/D)·cos(Ωx + β)` (Rahimi & Recht),
//! giving the model RBF-kernel expressiveness at linear cost.

use rand::Rng;

/// Configuration for an [`Svr`].
#[derive(Debug, Clone, Copy)]
pub struct SvrConfig {
    /// ε-tube half-width (in standardized target units).
    pub epsilon: f32,
    /// Regularization strength λ.
    pub lambda: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Random Fourier feature dimension (0 = linear SVR).
    pub rff_dims: usize,
    /// RBF bandwidth γ (ignored when `rff_dims == 0`).
    pub gamma: f32,
}

impl Default for SvrConfig {
    fn default() -> Self {
        SvrConfig { epsilon: 0.05, lambda: 1e-4, epochs: 60, rff_dims: 96, gamma: 0.25 }
    }
}

/// Random Fourier feature map.
#[derive(Debug, Clone)]
struct Rff {
    /// `dims × in_dim` projection.
    omega: Vec<f32>,
    beta: Vec<f32>,
    dims: usize,
    in_dim: usize,
}

impl Rff {
    fn new(in_dim: usize, dims: usize, gamma: f32, rng: &mut impl Rng) -> Rff {
        // ω ~ N(0, 2γ) via Box-Muller.
        let std = (2.0 * gamma).sqrt();
        let mut omega = Vec::with_capacity(dims * in_dim);
        for _ in 0..dims * in_dim {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            omega.push(std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos());
        }
        let beta = (0..dims).map(|_| rng.gen_range(0.0..2.0 * std::f32::consts::PI)).collect();
        Rff { omega, beta, dims, in_dim }
    }

    fn map(&self, x: &[f32], out: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), self.in_dim);
        out.clear();
        let scale = (2.0 / self.dims as f32).sqrt();
        for d in 0..self.dims {
            let row = &self.omega[d * self.in_dim..(d + 1) * self.in_dim];
            let mut acc = self.beta[d];
            for (w, v) in row.iter().zip(x) {
                acc += w * v;
            }
            out.push(scale * acc.cos());
        }
    }
}

/// A fitted ε-SVR model.
#[derive(Debug, Clone)]
pub struct Svr {
    config: SvrConfig,
    w: Vec<f32>,
    b: f32,
    rff: Option<Rff>,
    x_mean: Vec<f32>,
    x_std: Vec<f32>,
    y_mean: f32,
    y_std: f32,
}

impl Svr {
    /// Trains an SVR on feature rows `x` and targets `y`.
    ///
    /// # Panics
    /// Panics on empty or ragged input.
    pub fn fit(x: &[Vec<f32>], y: &[f32], config: SvrConfig, rng: &mut impl Rng) -> Svr {
        assert!(!x.is_empty(), "cannot fit SVR on zero rows");
        assert_eq!(x.len(), y.len());
        let in_dim = x[0].len();
        let n = x.len();

        // Standardize inputs and targets.
        let mut x_mean = vec![0.0f32; in_dim];
        let mut x_std = vec![0.0f32; in_dim];
        for xi in x {
            assert_eq!(xi.len(), in_dim, "ragged feature rows");
            for (m, v) in x_mean.iter_mut().zip(xi) {
                *m += v;
            }
        }
        for m in &mut x_mean {
            *m /= n as f32;
        }
        for xi in x {
            for ((s, m), v) in x_std.iter_mut().zip(&x_mean).zip(xi) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut x_std {
            *s = (*s / n as f32).sqrt().max(1e-6);
        }
        let y_mean = y.iter().sum::<f32>() / n as f32;
        let y_std = (y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f32>() / n as f32)
            .sqrt()
            .max(1e-6);

        let rff = if config.rff_dims > 0 {
            Some(Rff::new(in_dim, config.rff_dims, config.gamma, rng))
        } else {
            None
        };
        let w_dim = rff.as_ref().map(|r| r.dims).unwrap_or(in_dim);

        let mut model = Svr {
            config,
            w: vec![0.0; w_dim],
            b: 0.0,
            rff,
            x_mean,
            x_std,
            y_mean,
            y_std,
        };

        // Pre-map all rows once.
        let mapped: Vec<Vec<f32>> = x.iter().map(|xi| model.lift(xi)).collect();
        let targets: Vec<f32> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        // Primal subgradient descent with a Bottou-style decaying rate:
        // lr_t = lr₀ / (1 + lr₀·λ·t). (The raw Pegasos 1/(λt) schedule
        // starts at 1/λ, which explodes for small λ.)
        const LR0: f32 = 0.3;
        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 1usize;
        for _ in 0..config.epochs {
            // Fisher-Yates shuffle with the provided RNG.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let lr = LR0 / (1.0 + LR0 * config.lambda * t as f32);
                let pred = model.dot(&mapped[i]);
                let err = pred - targets[i];
                // L2 shrinkage.
                let shrink = 1.0 - lr * config.lambda;
                for w in &mut model.w {
                    *w *= shrink;
                }
                // ε-insensitive subgradient.
                if err.abs() > config.epsilon {
                    let sign = err.signum();
                    for (w, v) in model.w.iter_mut().zip(&mapped[i]) {
                        *w -= lr * sign * v;
                    }
                    model.b -= lr * sign * 0.1;
                }
                t += 1;
            }
        }
        model
    }

    /// Standardizes and (optionally) RFF-lifts a raw feature row.
    fn lift(&self, x: &[f32]) -> Vec<f32> {
        let std: Vec<f32> = x
            .iter()
            .zip(&self.x_mean)
            .zip(&self.x_std)
            .map(|((v, m), s)| (v - m) / s)
            .collect();
        match &self.rff {
            Some(r) => {
                let mut out = Vec::with_capacity(r.dims);
                r.map(&std, &mut out);
                out
            }
            None => std,
        }
    }

    fn dot(&self, lifted: &[f32]) -> f32 {
        let mut acc = self.b;
        for (w, v) in self.w.iter().zip(lifted) {
            acc += w * v;
        }
        acc
    }

    /// Predicts the target for a raw feature row.
    pub fn predict(&self, x: &[f32]) -> f32 {
        let lifted = self.lift(x);
        self.dot(&lifted) * self.y_std + self.y_mean
    }

    /// The ε used at training time (standardized units).
    pub fn epsilon(&self) -> f32 {
        self.config.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn linear_svr_fits_a_line() {
        let x: Vec<Vec<f32>> = (0..60).map(|i| vec![i as f32 / 10.0]).collect();
        let y: Vec<f32> = x.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        let cfg = SvrConfig { rff_dims: 0, epochs: 120, ..Default::default() };
        let m = Svr::fit(&x, &y, cfg, &mut rng());
        for (xi, yi) in x.iter().zip(&y) {
            assert!((m.predict(xi) - yi).abs() < 1.2, "{yi} vs {}", m.predict(xi));
        }
    }

    #[test]
    fn rbf_svr_fits_a_nonlinear_function() {
        let x: Vec<Vec<f32>> = (0..120).map(|i| vec![i as f32 / 20.0]).collect();
        let y: Vec<f32> = x.iter().map(|r| (r[0]).sin() * 2.0 + 0.5).collect();
        let cfg = SvrConfig { rff_dims: 128, gamma: 0.5, epochs: 150, ..Default::default() };
        let m = Svr::fit(&x, &y, cfg, &mut rng());
        let mse: f32 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| {
                let e = m.predict(xi) - yi;
                e * e
            })
            .sum::<f32>()
            / x.len() as f32;
        // A linear model cannot get below the signal variance (~2);
        // the RBF map should.
        assert!(mse < 0.6, "mse {mse}");
    }

    #[test]
    fn constant_targets_are_learned_exactly() {
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let y = vec![5.0f32; 20];
        let m = Svr::fit(&x, &y, SvrConfig::default(), &mut rng());
        assert!((m.predict(&[3.0]) - 5.0).abs() < 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let x: Vec<Vec<f32>> = (0..30).map(|i| vec![i as f32, (i % 5) as f32]).collect();
        let y: Vec<f32> = (0..30).map(|i| i as f32 * 0.5).collect();
        let a = Svr::fit(&x, &y, SvrConfig::default(), &mut rng());
        let b = Svr::fit(&x, &y, SvrConfig::default(), &mut rng());
        assert_eq!(a.predict(&[7.0, 2.0]), b.predict(&[7.0, 2.0]));
    }
}
