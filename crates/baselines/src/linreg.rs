//! Ridge least-squares regression via normal equations + Cholesky.
//!
//! Used by the TAM baseline's coefficient calibration. Problems here are
//! tiny (≤ ~30 features), so the `O(F³)` solve is trivially fast and `f64`
//! keeps it well-conditioned together with the ridge term.

/// A fitted linear model `y ≈ w · x + b` (bias folded into the weights).
#[derive(Debug, Clone)]
pub struct LinearModel {
    /// Weights; the last element is the intercept.
    pub weights: Vec<f64>,
}

impl LinearModel {
    /// Fits ridge regression with penalty `lambda` on rows `x` (each of
    /// equal length) against targets `y`.
    ///
    /// # Panics
    /// Panics on empty or ragged input.
    pub fn fit(x: &[Vec<f64>], y: &[f64], lambda: f64) -> LinearModel {
        assert!(!x.is_empty(), "cannot fit on zero rows");
        assert_eq!(x.len(), y.len(), "row/target count mismatch");
        let f = x[0].len() + 1; // + intercept

        // Normal equations: (XᵀX + λI) w = Xᵀy, with X augmented by 1s.
        let mut xtx = vec![0.0f64; f * f];
        let mut xty = vec![0.0f64; f];
        let mut row = vec![0.0f64; f];
        for (xi, &yi) in x.iter().zip(y) {
            assert_eq!(xi.len(), f - 1, "ragged feature rows");
            row[..f - 1].copy_from_slice(xi);
            row[f - 1] = 1.0;
            for a in 0..f {
                xty[a] += row[a] * yi;
                for b in a..f {
                    xtx[a * f + b] += row[a] * row[b];
                }
            }
        }
        // Mirror the upper triangle and add the ridge (not on the bias).
        for a in 0..f {
            for b in 0..a {
                xtx[a * f + b] = xtx[b * f + a];
            }
        }
        for a in 0..f - 1 {
            xtx[a * f + a] += lambda;
        }
        xtx[f * f - 1] += 1e-9;

        let weights = cholesky_solve(&mut xtx, &xty, f);
        LinearModel { weights }
    }

    /// Predicts one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len() + 1, self.weights.len());
        let mut acc = self.weights[self.weights.len() - 1];
        for (w, v) in self.weights.iter().zip(x) {
            acc += w * v;
        }
        acc
    }
}

/// Solves `A·w = b` for symmetric positive-definite `A` (row-major, `n×n`)
/// by Cholesky decomposition. Falls back to a diagonal boost on
/// near-singular input.
fn cholesky_solve(a: &mut [f64], b: &[f64], n: usize) -> Vec<f64> {
    // Decompose A = L·Lᵀ in place (lower triangle).
    for boost in 0..6 {
        let mut ok = true;
        let mut l = a.to_vec();
        'outer: for i in 0..n {
            for j in 0..=i {
                let mut sum = l[i * n + j];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        ok = false;
                        break 'outer;
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        if ok {
            // Forward substitution L·z = b.
            let mut z = vec![0.0f64; n];
            for i in 0..n {
                let mut sum = b[i];
                for k in 0..i {
                    sum -= l[i * n + k] * z[k];
                }
                z[i] = sum / l[i * n + i];
            }
            // Back substitution Lᵀ·w = z.
            let mut w = vec![0.0f64; n];
            for i in (0..n).rev() {
                let mut sum = z[i];
                for k in i + 1..n {
                    sum -= l[k * n + i] * w[k];
                }
                w[i] = sum / l[i * n + i];
            }
            return w;
        }
        // Boost the diagonal and retry.
        let scale = 10f64.powi(boost - 3);
        for i in 0..n {
            a[i * n + i] += scale.max(1e-6);
        }
    }
    // Pathological input: return zeros (predicts the bias-free 0).
    vec![0.0; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 2x₀ − 3x₁ + 5
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 5.0).collect();
        let m = LinearModel::fit(&x, &y, 1e-9);
        assert!((m.weights[0] - 2.0).abs() < 1e-6);
        assert!((m.weights[1] + 3.0).abs() < 1e-6);
        assert!((m.weights[2] - 5.0).abs() < 1e-5);
        assert!((m.predict(&[10.0, 1.0]) - 22.0).abs() < 1e-5);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 4.0 * r[0]).collect();
        let loose = LinearModel::fit(&x, &y, 1e-9);
        let tight = LinearModel::fit(&x, &y, 1e4);
        assert!(tight.weights[0].abs() < loose.weights[0].abs());
    }

    #[test]
    fn collinear_features_do_not_explode() {
        // Two identical columns: the ridge keeps the solve finite.
        let x: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..15).map(|i| 3.0 * i as f64).collect();
        let m = LinearModel::fit(&x, &y, 1e-3);
        assert!(m.weights.iter().all(|w| w.is_finite()));
        assert!((m.predict(&[5.0, 5.0]) - 15.0).abs() < 0.5);
    }
}
