//! RBF — Resource-Based Features with MART (Li et al. \[25\]).
//!
//! One gradient-boosted forest per operator family predicts the operator's
//! *self* (exclusive) latency from hand-picked resource features; the
//! human-derived combination model is that operator self-times add up to
//! the query latency. This gives the baseline nonlinear per-operator
//! models — unlike TAM — but, unlike QPPNet, the features are fixed by a
//! human and no information flows between operators beyond child
//! cardinality estimates.
//!
//! Self-latencies are regressed in `log1p` space and decoded before
//! summation.

use crate::cart::{Mart, MartConfig};
use crate::features::op_features;
use crate::LatencyModel;
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::Plan;

fn encode(ms: f64) -> f32 {
    ms.max(0.0).ln_1p() as f32
}

fn decode(v: f32) -> f64 {
    (v as f64).exp_m1().max(0.0)
}

/// The MART-based resource model.
pub struct RbfModel {
    config: MartConfig,
    per_kind: Vec<Option<Mart>>,
    /// Fallback mean encoded self-latency per family (for families with
    /// too few training rows to grow a forest).
    fallback: Vec<f32>,
}

impl RbfModel {
    /// Creates an untrained model with default MART settings.
    pub fn new() -> RbfModel {
        RbfModel::with_config(MartConfig::default())
    }

    /// Creates an untrained model with explicit MART settings.
    pub fn with_config(config: MartConfig) -> RbfModel {
        RbfModel {
            config,
            per_kind: (0..OpKind::ALL.len()).map(|_| None).collect(),
            fallback: vec![0.0; OpKind::ALL.len()],
        }
    }

    fn fitted(&self) -> bool {
        self.per_kind.iter().any(Option::is_some) || self.fallback.iter().any(|v| *v > 0.0)
    }
}

impl Default for RbfModel {
    fn default() -> Self {
        RbfModel::new()
    }
}

impl LatencyModel for RbfModel {
    fn name(&self) -> &'static str {
        "RBF"
    }

    fn fit(&mut self, plans: &[&Plan]) {
        assert!(!plans.is_empty(), "RBF needs training plans");
        let mut xs: Vec<Vec<Vec<f32>>> = (0..OpKind::ALL.len()).map(|_| Vec::new()).collect();
        let mut ys: Vec<Vec<f32>> = (0..OpKind::ALL.len()).map(|_| Vec::new()).collect();
        for p in plans {
            p.root.visit_postorder(&mut |node| {
                let k = node.op.kind().index();
                xs[k].push(op_features(node));
                ys[k].push(encode(node.actual.self_latency_ms));
            });
        }
        for k in 0..OpKind::ALL.len() {
            if !ys[k].is_empty() {
                self.fallback[k] = ys[k].iter().sum::<f32>() / ys[k].len() as f32;
            }
            if xs[k].len() >= 16 {
                self.per_kind[k] = Some(Mart::fit(&xs[k], &ys[k], self.config));
            }
        }
    }

    fn predict(&self, plan: &Plan) -> f64 {
        assert!(self.fitted(), "RBF must be fitted before prediction");
        let mut total = 0.0f64;
        plan.root.visit_postorder(&mut |node| {
            let k = node.op.kind().index();
            let encoded = match &self.per_kind[k] {
                Some(forest) => forest.predict(&op_features(node)),
                None => self.fallback[k],
            };
            total += decode(encoded);
        });
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    #[test]
    fn fit_predict_round_trip() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 80, 11);
        let refs: Vec<&Plan> = ds.plans.iter().collect();
        let mut rbf = RbfModel::new();
        rbf.fit(&refs[..70]);
        for p in &refs[70..] {
            let pred = rbf.predict(p);
            assert!(pred.is_finite() && pred >= 0.0);
        }
    }

    #[test]
    fn train_set_accuracy_is_reasonable() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 150, 12);
        let refs: Vec<&Plan> = ds.plans.iter().collect();
        let mut rbf = RbfModel::new();
        rbf.fit(&refs);
        // Geometric-mean error factor on training data should be modest.
        let mut log_r = 0.0f64;
        for p in &refs {
            let pred = rbf.predict(p).max(1e-9);
            let actual = p.latency_ms().max(1e-9);
            log_r += (pred / actual).ln().abs();
        }
        let gm = (log_r / refs.len() as f64).exp();
        assert!(gm < 3.0, "geometric mean error factor {gm}");
    }

    #[test]
    #[should_panic(expected = "fitted")]
    fn predict_before_fit_panics() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 1, 13);
        let rbf = RbfModel::new();
        let _ = rbf.predict(&ds.plans[0]);
    }
}
