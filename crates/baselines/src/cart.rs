//! CART regression trees and MART (gradient-boosted) ensembles.
//!
//! MART — Multiple Additive Regression Trees — is the learner Li et
//! al. \[25\] use for resource estimation; the paper's RBF baseline adapts it
//! to latency prediction. Trees are grown greedily with exact
//! least-squares splits; boosting fits each tree to the residuals of the
//! ensemble so far.

/// One node of a regression tree (indices into the flat node arena).
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A CART regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

/// Tree-growing parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 4, min_leaf: 8 }
    }
}

impl RegressionTree {
    /// Fits a tree on rows `x` (accessed via index set `idx`) and targets
    /// `y` with exact greedy least-squares splits.
    pub fn fit(x: &[Vec<f32>], y: &[f32], config: TreeConfig) -> RegressionTree {
        assert!(!x.is_empty(), "cannot fit a tree on zero rows");
        assert_eq!(x.len(), y.len());
        let mut tree = RegressionTree { nodes: Vec::new() };
        let idx: Vec<usize> = (0..x.len()).collect();
        tree.grow(x, y, idx, config.max_depth, config.min_leaf);
        tree
    }

    fn grow(
        &mut self,
        x: &[Vec<f32>],
        y: &[f32],
        idx: Vec<usize>,
        depth_left: usize,
        min_leaf: usize,
    ) -> usize {
        let mean = idx.iter().map(|&i| y[i] as f64).sum::<f64>() / idx.len() as f64;
        if depth_left == 0 || idx.len() < 2 * min_leaf {
            self.nodes.push(Node::Leaf { value: mean as f32 });
            return self.nodes.len() - 1;
        }

        // Best split over all features.
        let n_features = x[0].len();
        let mut best: Option<(usize, f32, f64)> = None; // (feature, threshold, sse gain)
        let total_sum: f64 = idx.iter().map(|&i| y[i] as f64).sum();
        let total_sq: f64 = idx.iter().map(|&i| (y[i] as f64) * (y[i] as f64)).sum();
        let total_sse = total_sq - total_sum * total_sum / idx.len() as f64;

        let mut sorted = idx.clone();
        // `f` indexes columns of the row-major `x`; no iterator form fits.
        #[allow(clippy::needless_range_loop)]
        for f in 0..n_features {
            sorted.sort_by(|&a, &b| {
                x[a][f].partial_cmp(&x[b][f]).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_sum = 0.0f64;
            let mut left_sq = 0.0f64;
            for (k, &i) in sorted.iter().enumerate().take(sorted.len() - min_leaf) {
                let yi = y[i] as f64;
                left_sum += yi;
                left_sq += yi * yi;
                let nl = (k + 1) as f64;
                if k + 1 < min_leaf {
                    continue;
                }
                // Can't split between equal feature values.
                if x[i][f] == x[sorted[k + 1]][f] {
                    continue;
                }
                let nr = (sorted.len() - k - 1) as f64;
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse = (left_sq - left_sum * left_sum / nl)
                    + (right_sq - right_sum * right_sum / nr);
                let gain = total_sse - sse;
                if gain > best.map(|b| b.2).unwrap_or(1e-12) {
                    let threshold = 0.5 * (x[i][f] + x[sorted[k + 1]][f]);
                    best = Some((f, threshold, gain));
                }
            }
        }

        match best {
            None => {
                self.nodes.push(Node::Leaf { value: mean as f32 });
                self.nodes.len() - 1
            }
            Some((feature, threshold, _)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    idx.into_iter().partition(|&i| x[i][feature] <= threshold);
                let left = self.grow(x, y, left_idx, depth_left - 1, min_leaf);
                let right = self.grow(x, y, right_idx, depth_left - 1, min_leaf);
                self.nodes.push(Node::Split { feature, threshold, left, right });
                self.nodes.len() - 1
            }
        }
    }

    /// Predicts one row.
    pub fn predict(&self, x: &[f32]) -> f32 {
        let mut at = self.nodes.len() - 1; // root is pushed last
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    at = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (for tests).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

/// MART configuration.
#[derive(Debug, Clone, Copy)]
pub struct MartConfig {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Shrinkage (learning rate).
    pub shrinkage: f32,
    /// Per-tree growing parameters.
    pub tree: TreeConfig,
}

impl Default for MartConfig {
    fn default() -> Self {
        MartConfig { n_trees: 80, shrinkage: 0.1, tree: TreeConfig::default() }
    }
}

/// A gradient-boosted regression forest.
#[derive(Debug, Clone)]
pub struct Mart {
    base: f32,
    shrinkage: f32,
    trees: Vec<RegressionTree>,
}

impl Mart {
    /// Fits `config.n_trees` least-squares boosting rounds.
    pub fn fit(x: &[Vec<f32>], y: &[f32], config: MartConfig) -> Mart {
        assert!(!x.is_empty(), "cannot fit MART on zero rows");
        let base = y.iter().sum::<f32>() / y.len() as f32;
        let mut residuals: Vec<f32> = y.iter().map(|v| v - base).collect();
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            let tree = RegressionTree::fit(x, &residuals, config.tree);
            for (r, xi) in residuals.iter_mut().zip(x) {
                *r -= config.shrinkage * tree.predict(xi);
            }
            trees.push(tree);
        }
        Mart { base, shrinkage: config.shrinkage, trees }
    }

    /// Predicts one row.
    pub fn predict(&self, x: &[f32]) -> f32 {
        let mut acc = self.base;
        for t in &self.trees {
            acc += self.shrinkage * t.predict(x);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f32>>, Vec<f32>) {
        // A step function a linear model cannot capture.
        let x: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
        let y: Vec<f32> = (0..100).map(|i| if i < 50 { 1.0 } else { 10.0 }).collect();
        (x, y)
    }

    #[test]
    fn single_tree_learns_a_step() {
        let (x, y) = step_data();
        let t = RegressionTree::fit(&x, &y, TreeConfig::default());
        assert!((t.predict(&[10.0]) - 1.0).abs() < 0.5);
        assert!((t.predict(&[90.0]) - 10.0).abs() < 0.5);
    }

    #[test]
    fn leaf_only_tree_predicts_mean() {
        let x: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let y = vec![4.0f32; 10];
        let t = RegressionTree::fit(&x, &y, TreeConfig { max_depth: 0, min_leaf: 1 });
        assert_eq!(t.len(), 1);
        assert!((t.predict(&[3.0]) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn min_leaf_is_respected() {
        let (x, y) = step_data();
        let t = RegressionTree::fit(&x, &y, TreeConfig { max_depth: 10, min_leaf: 30 });
        // With min_leaf 30 the tree can split at most a couple of times.
        assert!(t.len() <= 7, "tree has {} nodes", t.len());
    }

    #[test]
    fn boosting_beats_a_single_tree_on_smooth_targets() {
        let x: Vec<Vec<f32>> = (0..200).map(|i| vec![i as f32 / 20.0]).collect();
        let y: Vec<f32> = x.iter().map(|r| (r[0]).sin() * 3.0).collect();
        let single = RegressionTree::fit(&x, &y, TreeConfig::default());
        let forest = Mart::fit(&x, &y, MartConfig::default());
        let mse = |pred: &dyn Fn(&[f32]) -> f32| {
            x.iter()
                .zip(&y)
                .map(|(xi, yi)| {
                    let e = pred(xi) - yi;
                    (e * e) as f64
                })
                .sum::<f64>()
                / x.len() as f64
        };
        let mse_single = mse(&|xi| single.predict(xi));
        let mse_forest = mse(&|xi| forest.predict(xi));
        assert!(mse_forest < mse_single * 0.5, "single {mse_single} forest {mse_forest}");
    }

    #[test]
    fn mart_handles_multifeature_interactions() {
        // y = x0 XOR-ish interaction: x0>5 && x1>5 -> high.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..12 {
            for b in 0..12 {
                x.push(vec![a as f32, b as f32]);
                y.push(if a > 5 && b > 5 { 8.0 } else { 1.0 });
            }
        }
        let m = Mart::fit(&x, &y, MartConfig::default());
        assert!(m.predict(&[9.0, 9.0]) > 6.0);
        assert!(m.predict(&[2.0, 9.0]) < 3.0);
    }
}
