//! Hand-picked feature extraction for the baseline models.
//!
//! These are the "intelligent human feature engineering" feature sets the
//! paper contrasts QPPNet against: per-operator resource indicators
//! (estimated rows, cost, I/Os, memory) and coarse plan-level summaries —
//! no relation identities, no attribute statistics, no learned vectors.

use qpp_plansim::features::signed_log1p;
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::{Plan, PlanNode};

/// Number of per-operator resource features.
pub const OP_FEATURES: usize = 10;

/// Hand-picked per-operator resource features (\[25\]-style).
///
/// `[log rows, log width, log buffers, log ios, log cost, selectivity,
///   log child₁ rows, log child₂ rows, #children, kind ordinal]`
pub fn op_features(node: &PlanNode) -> Vec<f32> {
    let mut v = Vec::with_capacity(OP_FEATURES);
    v.push(signed_log1p(node.est.rows));
    v.push(signed_log1p(node.est.width));
    v.push(signed_log1p(node.est.buffers));
    v.push(signed_log1p(node.est.ios));
    v.push(signed_log1p(node.est.total_cost));
    v.push(node.est.selectivity as f32);
    v.push(node.children.first().map(|c| signed_log1p(c.est.rows)).unwrap_or(0.0));
    v.push(node.children.get(1).map(|c| signed_log1p(c.est.rows)).unwrap_or(0.0));
    v.push(node.children.len() as f32);
    v.push(node.op.kind().index() as f32);
    v
}

/// Number of plan-level summary features.
pub const PLAN_FEATURES: usize = OpKind::ALL.len() + 5;

/// Plan-level summary features (\[4\]-style plan models).
///
/// Per-family operator counts plus root cost/rows, node count, depth and
/// total estimated I/Os.
pub fn plan_features(plan: &Plan) -> Vec<f32> {
    let mut counts = [0f32; OpKind::ALL.len()];
    let mut total_ios = 0.0f64;
    plan.root.visit_postorder(&mut |n| {
        counts[n.op.kind().index()] += 1.0;
        total_ios += n.est.ios;
    });
    let mut v = Vec::with_capacity(PLAN_FEATURES);
    v.extend_from_slice(&counts);
    v.push(signed_log1p(plan.root.est.total_cost));
    v.push(signed_log1p(plan.root.est.rows));
    v.push(signed_log1p(plan.node_count() as f64));
    v.push(plan.depth() as f32);
    v.push(signed_log1p(total_ios));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    #[test]
    fn feature_vectors_have_documented_sizes() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 5, 1);
        for p in &ds.plans {
            assert_eq!(plan_features(p).len(), PLAN_FEATURES);
            p.root.visit_postorder(&mut |n| {
                assert_eq!(op_features(n).len(), OP_FEATURES);
            });
        }
    }

    #[test]
    fn plan_feature_counts_sum_to_node_count() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 5, 2);
        for p in &ds.plans {
            let v = plan_features(p);
            let count: f32 = v[..OpKind::ALL.len()].iter().sum();
            assert_eq!(count as usize, p.node_count());
        }
    }

    #[test]
    fn features_never_read_actuals() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 3, 3);
        let mut plan = ds.plans[0].clone();
        let before = plan_features(&plan);
        let before_op = op_features(&plan.root);
        plan.root.actual.latency_ms *= 100.0;
        plan.root.actual.rows += 1e6;
        assert_eq!(before, plan_features(&plan));
        assert_eq!(before_op, op_features(&plan.root));
    }
}
