//! SVM — operator-level SVR models with a plan-level fallback
//! (Akdere et al. \[4\]).
//!
//! One ε-SVR per operator family predicts the operator's (inclusive)
//! latency from hand-picked features plus its children's *predicted
//! latencies* — a single scalar per child, in contrast to QPPNet's learned
//! `d`-dimensional data vectors. Prediction composes the models bottom-up;
//! the root's prediction is the query latency.
//!
//! Following \[4\], a plan-level SVR over coarse whole-plan features is
//! trained alongside, and used instead of the composed operator models for
//! plans containing operator families whose operator-level models proved
//! unreliable on a validation split ("selective applications of plan-level
//! models in situations where the operator-level models are likely to be
//! inaccurate").
//!
//! Latencies are regressed in `log1p` space (they span orders of
//! magnitude), as for every learned model in this reproduction.

use crate::features::{op_features, plan_features, OP_FEATURES};
use crate::svr::{Svr, SvrConfig};
use crate::LatencyModel;
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::{Plan, PlanNode};
use rand::SeedableRng;

fn encode(ms: f64) -> f32 {
    ms.max(0.0).ln_1p() as f32
}

fn decode(v: f32) -> f64 {
    (v as f64).exp_m1().max(0.0)
}

/// Relative-error threshold above which an operator family's model is
/// deemed unreliable and triggers the plan-level fallback.
const UNRELIABLE_THRESHOLD: f64 = 1.0;

/// The hybrid operator-level / plan-level SVR model.
pub struct SvmModel {
    seed: u64,
    per_kind: Vec<Option<Svr>>,
    plan_level: Option<Svr>,
    unreliable: Vec<bool>,
}

impl SvmModel {
    /// Creates an untrained model.
    pub fn new(seed: u64) -> SvmModel {
        SvmModel {
            seed,
            per_kind: (0..OpKind::ALL.len()).map(|_| None).collect(),
            plan_level: None,
            unreliable: vec![false; OpKind::ALL.len()],
        }
    }

    /// Operator feature vector: hand-picked features ⌢ child latency
    /// predictions (encoded), padded to two children.
    fn op_input(node: &PlanNode, child_preds: &[f32]) -> Vec<f32> {
        let mut v = op_features(node);
        v.push(child_preds.first().copied().unwrap_or(0.0));
        v.push(child_preds.get(1).copied().unwrap_or(0.0));
        debug_assert_eq!(v.len(), OP_FEATURES + 2);
        v
    }

    /// Bottom-up composed prediction (encoded space) for a subtree.
    fn predict_node(&self, node: &PlanNode) -> f32 {
        let child_preds: Vec<f32> =
            node.children.iter().map(|c| self.predict_node(c)).collect();
        let input = Self::op_input(node, &child_preds);
        match &self.per_kind[node.op.kind().index()] {
            Some(svr) => svr.predict(&input),
            // Families never seen in training: fall back to the child sum.
            None => child_preds.iter().copied().fold(0.0f32, f32::max),
        }
    }

    /// Whether the plan triggers the plan-level fallback.
    fn needs_fallback(&self, plan: &Plan) -> bool {
        let mut needs = false;
        plan.root.visit_postorder(&mut |n| {
            let k = n.op.kind().index();
            if self.unreliable[k] || self.per_kind[k].is_none() {
                needs = true;
            }
        });
        needs
    }
}

impl LatencyModel for SvmModel {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn fit(&mut self, plans: &[&Plan]) {
        assert!(!plans.is_empty(), "SVM needs training plans");
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);

        // 80/20 fit/validation split (deterministic order split is fine
        // because dataset generation already randomizes template order).
        let n_fit = ((plans.len() as f64) * 0.8).ceil() as usize;
        let (fit_plans, val_plans) = plans.split_at(n_fit.min(plans.len()));

        // Collect per-kind training rows. Child inputs use *actual* child
        // latencies at training time (teacher forcing, as in [4]).
        let mut xs: Vec<Vec<Vec<f32>>> = (0..OpKind::ALL.len()).map(|_| Vec::new()).collect();
        let mut ys: Vec<Vec<f32>> = (0..OpKind::ALL.len()).map(|_| Vec::new()).collect();
        for p in fit_plans {
            p.root.visit_postorder(&mut |node| {
                let child_preds: Vec<f32> =
                    node.children.iter().map(|c| encode(c.actual.latency_ms)).collect();
                xs[node.op.kind().index()].push(Self::op_input(node, &child_preds));
                ys[node.op.kind().index()].push(encode(node.actual.latency_ms));
            });
        }
        for k in 0..OpKind::ALL.len() {
            if xs[k].len() >= 8 {
                self.per_kind[k] =
                    Some(Svr::fit(&xs[k], &ys[k], SvrConfig::default(), &mut rng));
            }
        }

        // Plan-level model.
        let px: Vec<Vec<f32>> = fit_plans.iter().map(|p| plan_features(p)).collect();
        let py: Vec<f32> = fit_plans.iter().map(|p| encode(p.latency_ms())).collect();
        self.plan_level = Some(Svr::fit(&px, &py, SvrConfig::default(), &mut rng));

        // Validation: mark operator families whose model's composed
        // prediction error is large.
        let val = if val_plans.is_empty() { fit_plans } else { val_plans };
        let mut err_sum = vec![0.0f64; OpKind::ALL.len()];
        let mut err_n = vec![0usize; OpKind::ALL.len()];
        for p in val {
            p.root.visit_postorder(&mut |node| {
                let k = node.op.kind().index();
                if self.per_kind[k].is_none() {
                    return;
                }
                let pred = decode(self.predict_node(node));
                let actual = node.actual.latency_ms.max(1e-9);
                err_sum[k] += (pred - actual).abs() / actual;
                err_n[k] += 1;
            });
        }
        for k in 0..OpKind::ALL.len() {
            if err_n[k] > 0 {
                self.unreliable[k] = err_sum[k] / err_n[k] as f64 > UNRELIABLE_THRESHOLD;
            }
        }
    }

    fn predict(&self, plan: &Plan) -> f64 {
        let plan_model = self.plan_level.as_ref().expect("SVM must be fitted before prediction");
        if self.needs_fallback(plan) {
            decode(plan_model.predict(&plan_features(plan)))
        } else {
            decode(self.predict_node(&plan.root))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    #[test]
    fn fit_predict_round_trip() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 80, 5);
        let refs: Vec<&Plan> = ds.plans.iter().collect();
        let mut svm = SvmModel::new(1);
        svm.fit(&refs[..70]);
        for p in &refs[70..] {
            let pred = svm.predict(p);
            assert!(pred.is_finite() && pred >= 0.0, "prediction {pred}");
        }
    }

    #[test]
    fn predictions_track_latency_ordering_roughly() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 150, 6);
        let refs: Vec<&Plan> = ds.plans.iter().collect();
        let mut svm = SvmModel::new(2);
        svm.fit(&refs);
        // On the training data, the rank correlation between predictions
        // and actuals should be clearly positive.
        let mut pairs: Vec<(f64, f64)> =
            refs.iter().map(|p| (svm.predict(p), p.latency_ms())).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let n = pairs.len();
        let top_half_actual: f64 =
            pairs[n / 2..].iter().map(|(_, a)| a).sum::<f64>() / (n - n / 2) as f64;
        let bottom_half_actual: f64 =
            pairs[..n / 2].iter().map(|(_, a)| a).sum::<f64>() / (n / 2) as f64;
        assert!(
            top_half_actual > bottom_half_actual,
            "top {top_half_actual} bottom {bottom_half_actual}"
        );
    }

    #[test]
    #[should_panic(expected = "fitted")]
    fn predict_before_fit_panics() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 1, 7);
        let svm = SvmModel::new(3);
        let _ = svm.predict(&ds.plans[0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 40, 8);
        let refs: Vec<&Plan> = ds.plans.iter().collect();
        let mut a = SvmModel::new(9);
        let mut b = SvmModel::new(9);
        a.fit(&refs);
        b.fit(&refs);
        assert_eq!(a.predict(&ds.plans[0]), b.predict(&ds.plans[0]));
    }
}
