//! Database catalogs: tables, columns, statistics and indexes.
//!
//! The paper evaluates on TPC-H and TPC-DS at scale factor 100 running on
//! PostgreSQL. This module models the parts of those databases that the
//! paper's feature set (Table 2) and the optimizer/simulator need: table
//! cardinalities, row widths, per-column min/median/max statistics,
//! distinct-value counts, and available indexes.
//!
//! Row counts are expressed at scale factor 1 and scaled by
//! [`Catalog::scale_factor`]; fixed-size dimension tables (e.g. `region`,
//! `store`) do not scale, matching the benchmarks' specifications.

use serde::{Deserialize, Serialize};

/// Identifies a table inside a [`Catalog`] (index into [`Catalog::tables`]).
pub type TableId = usize;

/// Identifies an index inside a [`Catalog`] (global across tables).
pub type IndexId = usize;

/// Size of a disk page in bytes (PostgreSQL default).
pub const PAGE_SIZE: f64 = 8192.0;

/// A column with the statistics the scan featurization exposes
/// ("Attribute Mins/Medians/Maxs" in the paper's Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Minimum value (numeric encoding; dates are days since epoch).
    pub min: f64,
    /// Median value.
    pub median: f64,
    /// Maximum value.
    pub max: f64,
    /// Number of distinct values at scale factor 1.
    pub ndv: f64,
    /// Storage width in bytes.
    pub width: f64,
}

impl Column {
    fn new(name: &str, min: f64, median: f64, max: f64, ndv: f64, width: f64) -> Self {
        Column { name: name.to_string(), min, median, max, ndv, width }
    }
}

/// A secondary or primary B-tree index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Index {
    /// Index name (one-hot encoded in index-scan features).
    pub name: String,
    /// Table the index belongs to.
    pub table: TableId,
    /// Indexed column (position in the table's column list).
    pub column: usize,
    /// Whether the heap is physically correlated with the index order
    /// (clustered indexes make index scans dramatically cheaper).
    pub clustered: bool,
}

/// A base relation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Relation name (one-hot encoded in scan features).
    pub name: String,
    /// Rows at scale factor 1.
    pub base_rows: f64,
    /// Whether rows scale linearly with the scale factor.
    pub scales: bool,
    /// Total tuple width in bytes.
    pub row_width: f64,
    /// Columns with statistics.
    pub columns: Vec<Column>,
}

/// Which benchmark a catalog (and every plan generated from it) models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// TPC-H: 8 tables, 22 query templates.
    TpcH,
    /// TPC-DS: larger schema, 70 PostgreSQL-compatible templates.
    TpcDs,
}

impl Workload {
    /// Human-readable benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::TpcH => "TPC-H",
            Workload::TpcDs => "TPC-DS",
        }
    }
}

/// A database schema plus statistics at a chosen scale factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    /// Benchmark this catalog models.
    pub workload: Workload,
    /// Scale factor (the paper uses 100).
    pub scale_factor: f64,
    /// All base relations.
    pub tables: Vec<Table>,
    /// All indexes (across tables).
    pub indexes: Vec<Index>,
    /// Shared buffer pool size in pages (affects cold-cache behaviour).
    pub buffer_pool_pages: f64,
    /// Per-operator working memory in bytes (`work_mem`); exceeding it
    /// causes hash/sort spills in the simulator.
    pub work_mem_bytes: f64,
}

impl Catalog {
    /// Looks a table up by name.
    ///
    /// # Panics
    /// Panics if the table does not exist (catalog construction is static,
    /// so a miss is a programming error).
    pub fn table_id(&self, name: &str) -> TableId {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .unwrap_or_else(|| panic!("no table named {name}"))
    }

    /// Borrows a table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id]
    }

    /// Row count of a table at this catalog's scale factor.
    pub fn rows(&self, id: TableId) -> f64 {
        let t = &self.tables[id];
        if t.scales {
            t.base_rows * self.scale_factor
        } else {
            t.base_rows
        }
    }

    /// Heap pages occupied by a table at this scale factor.
    pub fn pages(&self, id: TableId) -> f64 {
        (self.rows(id) * self.tables[id].row_width / PAGE_SIZE).max(1.0)
    }

    /// Indexes defined on `table`.
    pub fn indexes_on(&self, table: TableId) -> impl Iterator<Item = (IndexId, &Index)> {
        self.indexes
            .iter()
            .enumerate()
            .filter(move |(_, ix)| ix.table == table)
    }

    /// Finds an index on `(table, column)` if one exists.
    pub fn index_on(&self, table: TableId, column: usize) -> Option<IndexId> {
        self.indexes
            .iter()
            .position(|ix| ix.table == table && ix.column == column)
    }

    /// Number of tables (size of the relation one-hot in scan features).
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of indexes (size of the index one-hot in scan features).
    pub fn num_indexes(&self) -> usize {
        self.indexes.len()
    }

    /// The TPC-H catalog at the given scale factor.
    ///
    /// Row counts and key statistics follow the TPC-H specification; column
    /// stats are representative values a `pg_stats` view would report.
    pub fn tpch(scale_factor: f64) -> Catalog {
        let c = Column::new;
        let tables = vec![
            Table {
                name: "region".into(),
                base_rows: 5.0,
                scales: false,
                row_width: 120.0,
                columns: vec![c("r_regionkey", 0.0, 2.0, 4.0, 5.0, 4.0)],
            },
            Table {
                name: "nation".into(),
                base_rows: 25.0,
                scales: false,
                row_width: 128.0,
                columns: vec![
                    c("n_nationkey", 0.0, 12.0, 24.0, 25.0, 4.0),
                    c("n_regionkey", 0.0, 2.0, 4.0, 5.0, 4.0),
                ],
            },
            Table {
                name: "supplier".into(),
                base_rows: 10_000.0,
                scales: true,
                row_width: 160.0,
                columns: vec![
                    c("s_suppkey", 1.0, 5_000.0, 10_000.0, 10_000.0, 4.0),
                    c("s_nationkey", 0.0, 12.0, 24.0, 25.0, 4.0),
                    c("s_acctbal", -999.99, 4_500.0, 9_999.99, 9_000.0, 8.0),
                ],
            },
            Table {
                name: "customer".into(),
                base_rows: 150_000.0,
                scales: true,
                row_width: 180.0,
                columns: vec![
                    c("c_custkey", 1.0, 75_000.0, 150_000.0, 150_000.0, 4.0),
                    c("c_nationkey", 0.0, 12.0, 24.0, 25.0, 4.0),
                    c("c_acctbal", -999.99, 4_500.0, 9_999.99, 140_000.0, 8.0),
                    c("c_mktsegment", 0.0, 2.0, 4.0, 5.0, 10.0),
                ],
            },
            Table {
                name: "part".into(),
                base_rows: 200_000.0,
                scales: true,
                row_width: 156.0,
                columns: vec![
                    c("p_partkey", 1.0, 100_000.0, 200_000.0, 200_000.0, 4.0),
                    c("p_size", 1.0, 25.0, 50.0, 50.0, 4.0),
                    c("p_retailprice", 901.0, 1_500.0, 2_098.99, 20_000.0, 8.0),
                    c("p_brand", 0.0, 12.0, 24.0, 25.0, 10.0),
                ],
            },
            Table {
                name: "partsupp".into(),
                base_rows: 800_000.0,
                scales: true,
                row_width: 144.0,
                columns: vec![
                    c("ps_partkey", 1.0, 100_000.0, 200_000.0, 200_000.0, 4.0),
                    c("ps_suppkey", 1.0, 5_000.0, 10_000.0, 10_000.0, 4.0),
                    c("ps_supplycost", 1.0, 500.0, 1_000.0, 99_865.0, 8.0),
                ],
            },
            Table {
                name: "orders".into(),
                base_rows: 1_500_000.0,
                scales: true,
                row_width: 110.0,
                columns: vec![
                    c("o_orderkey", 1.0, 3_000_000.0, 6_000_000.0, 1_500_000.0, 4.0),
                    c("o_custkey", 1.0, 75_000.0, 150_000.0, 100_000.0, 4.0),
                    c("o_orderdate", 8_036.0, 9_240.0, 10_440.0, 2_406.0, 4.0),
                    c("o_totalprice", 857.71, 144_411.0, 555_285.16, 1_464_556.0, 8.0),
                    c("o_orderstatus", 0.0, 1.0, 2.0, 3.0, 1.0),
                ],
            },
            Table {
                name: "lineitem".into(),
                base_rows: 6_001_215.0,
                scales: true,
                row_width: 128.0,
                columns: vec![
                    c("l_orderkey", 1.0, 3_000_000.0, 6_000_000.0, 1_500_000.0, 4.0),
                    c("l_partkey", 1.0, 100_000.0, 200_000.0, 200_000.0, 4.0),
                    c("l_suppkey", 1.0, 5_000.0, 10_000.0, 10_000.0, 4.0),
                    c("l_shipdate", 8_036.0, 9_298.0, 10_561.0, 2_526.0, 4.0),
                    c("l_quantity", 1.0, 25.0, 50.0, 50.0, 8.0),
                    c("l_extendedprice", 901.0, 36_262.0, 104_949.5, 933_900.0, 8.0),
                ],
            },
        ];
        let mut cat = Catalog {
            workload: Workload::TpcH,
            scale_factor,
            tables,
            indexes: Vec::new(),
            buffer_pool_pages: 1_048_576.0, // 8 GiB of shared buffers
            work_mem_bytes: 64.0 * 1024.0 * 1024.0,
        };
        cat.indexes = vec![
            Index { name: "pk_supplier".into(), table: cat.table_id("supplier"), column: 0, clustered: true },
            Index { name: "pk_customer".into(), table: cat.table_id("customer"), column: 0, clustered: true },
            Index { name: "pk_part".into(), table: cat.table_id("part"), column: 0, clustered: true },
            Index { name: "pk_partsupp".into(), table: cat.table_id("partsupp"), column: 0, clustered: true },
            Index { name: "pk_orders".into(), table: cat.table_id("orders"), column: 0, clustered: true },
            Index { name: "idx_orders_custkey".into(), table: cat.table_id("orders"), column: 1, clustered: false },
            Index { name: "idx_orders_orderdate".into(), table: cat.table_id("orders"), column: 2, clustered: false },
            Index { name: "idx_lineitem_orderkey".into(), table: cat.table_id("lineitem"), column: 0, clustered: true },
            Index { name: "idx_lineitem_partkey".into(), table: cat.table_id("lineitem"), column: 1, clustered: false },
            Index { name: "idx_lineitem_shipdate".into(), table: cat.table_id("lineitem"), column: 3, clustered: false },
        ];
        cat
    }

    /// The TPC-DS catalog at the given scale factor.
    ///
    /// Covers the fact tables and the dimension tables referenced by the 70
    /// PostgreSQL-compatible templates the paper evaluates.
    pub fn tpcds(scale_factor: f64) -> Catalog {
        let c = Column::new;
        let tables = vec![
            Table {
                name: "date_dim".into(),
                base_rows: 73_049.0,
                scales: false,
                row_width: 140.0,
                columns: vec![
                    c("d_date_sk", 2_415_022.0, 2_451_546.0, 2_488_070.0, 73_049.0, 4.0),
                    c("d_year", 1900.0, 1998.0, 2100.0, 201.0, 4.0),
                    c("d_moy", 1.0, 6.0, 12.0, 12.0, 4.0),
                    c("d_qoy", 1.0, 2.0, 4.0, 4.0, 4.0),
                ],
            },
            Table {
                name: "time_dim".into(),
                base_rows: 86_400.0,
                scales: false,
                row_width: 60.0,
                columns: vec![c("t_time_sk", 0.0, 43_200.0, 86_399.0, 86_400.0, 4.0)],
            },
            Table {
                name: "item".into(),
                base_rows: 18_000.0,
                scales: true,
                row_width: 280.0,
                columns: vec![
                    c("i_item_sk", 1.0, 9_000.0, 18_000.0, 18_000.0, 4.0),
                    c("i_category", 0.0, 5.0, 10.0, 10.0, 16.0),
                    c("i_brand", 0.0, 350.0, 714.0, 714.0, 16.0),
                    c("i_current_price", 0.09, 50.0, 99.99, 9_000.0, 8.0),
                    c("i_manufact_id", 1.0, 500.0, 1_000.0, 1_000.0, 4.0),
                ],
            },
            Table {
                name: "customer".into(),
                base_rows: 100_000.0,
                scales: true,
                row_width: 220.0,
                columns: vec![
                    c("c_customer_sk", 1.0, 50_000.0, 100_000.0, 100_000.0, 4.0),
                    c("c_current_addr_sk", 1.0, 25_000.0, 50_000.0, 50_000.0, 4.0),
                    c("c_birth_year", 1924.0, 1960.0, 1992.0, 69.0, 4.0),
                ],
            },
            Table {
                name: "customer_address".into(),
                base_rows: 50_000.0,
                scales: true,
                row_width: 160.0,
                columns: vec![
                    c("ca_address_sk", 1.0, 25_000.0, 50_000.0, 50_000.0, 4.0),
                    c("ca_state", 0.0, 25.0, 50.0, 51.0, 2.0),
                    c("ca_gmt_offset", -10.0, -6.0, -5.0, 6.0, 8.0),
                ],
            },
            Table {
                name: "customer_demographics".into(),
                base_rows: 1_920_800.0,
                scales: false,
                row_width: 60.0,
                columns: vec![
                    c("cd_demo_sk", 1.0, 960_400.0, 1_920_800.0, 1_920_800.0, 4.0),
                    c("cd_gender", 0.0, 0.5, 1.0, 2.0, 1.0),
                    c("cd_education_status", 0.0, 3.0, 6.0, 7.0, 10.0),
                ],
            },
            Table {
                name: "household_demographics".into(),
                base_rows: 7_200.0,
                scales: false,
                row_width: 40.0,
                columns: vec![
                    c("hd_demo_sk", 1.0, 3_600.0, 7_200.0, 7_200.0, 4.0),
                    c("hd_dep_count", 0.0, 4.0, 9.0, 10.0, 4.0),
                ],
            },
            Table {
                name: "store".into(),
                base_rows: 12.0,
                scales: false,
                row_width: 300.0,
                columns: vec![
                    c("s_store_sk", 1.0, 6.0, 12.0, 12.0, 4.0),
                    c("s_state", 0.0, 25.0, 50.0, 9.0, 2.0),
                ],
            },
            Table {
                name: "warehouse".into(),
                base_rows: 5.0,
                scales: false,
                row_width: 200.0,
                columns: vec![c("w_warehouse_sk", 1.0, 3.0, 5.0, 5.0, 4.0)],
            },
            Table {
                name: "promotion".into(),
                base_rows: 300.0,
                scales: false,
                row_width: 130.0,
                columns: vec![c("p_promo_sk", 1.0, 150.0, 300.0, 300.0, 4.0)],
            },
            Table {
                name: "web_site".into(),
                base_rows: 30.0,
                scales: false,
                row_width: 290.0,
                columns: vec![c("web_site_sk", 1.0, 15.0, 30.0, 30.0, 4.0)],
            },
            Table {
                name: "web_page".into(),
                base_rows: 60.0,
                scales: false,
                row_width: 100.0,
                columns: vec![c("wp_web_page_sk", 1.0, 30.0, 60.0, 60.0, 4.0)],
            },
            Table {
                name: "call_center".into(),
                base_rows: 6.0,
                scales: false,
                row_width: 310.0,
                columns: vec![c("cc_call_center_sk", 1.0, 3.0, 6.0, 6.0, 4.0)],
            },
            Table {
                name: "ship_mode".into(),
                base_rows: 20.0,
                scales: false,
                row_width: 60.0,
                columns: vec![c("sm_ship_mode_sk", 1.0, 10.0, 20.0, 20.0, 4.0)],
            },
            Table {
                name: "reason".into(),
                base_rows: 35.0,
                scales: false,
                row_width: 40.0,
                columns: vec![c("r_reason_sk", 1.0, 18.0, 35.0, 35.0, 4.0)],
            },
            Table {
                name: "income_band".into(),
                base_rows: 20.0,
                scales: false,
                row_width: 16.0,
                columns: vec![c("ib_income_band_sk", 1.0, 10.0, 20.0, 20.0, 4.0)],
            },
            Table {
                name: "store_sales".into(),
                base_rows: 2_880_404.0,
                scales: true,
                row_width: 100.0,
                columns: vec![
                    c("ss_sold_date_sk", 2_450_816.0, 2_451_730.0, 2_452_642.0, 1_823.0, 4.0),
                    c("ss_item_sk", 1.0, 9_000.0, 18_000.0, 18_000.0, 4.0),
                    c("ss_customer_sk", 1.0, 50_000.0, 100_000.0, 100_000.0, 4.0),
                    c("ss_store_sk", 1.0, 6.0, 12.0, 12.0, 4.0),
                    c("ss_sales_price", 0.0, 37.0, 200.0, 19_000.0, 8.0),
                ],
            },
            Table {
                name: "store_returns".into(),
                base_rows: 287_514.0,
                scales: true,
                row_width: 88.0,
                columns: vec![
                    c("sr_returned_date_sk", 2_450_820.0, 2_451_850.0, 2_452_822.0, 2_003.0, 4.0),
                    c("sr_item_sk", 1.0, 9_000.0, 18_000.0, 18_000.0, 4.0),
                    c("sr_customer_sk", 1.0, 50_000.0, 100_000.0, 100_000.0, 4.0),
                ],
            },
            Table {
                name: "catalog_sales".into(),
                base_rows: 1_441_548.0,
                scales: true,
                row_width: 160.0,
                columns: vec![
                    c("cs_sold_date_sk", 2_450_815.0, 2_451_730.0, 2_452_654.0, 1_837.0, 4.0),
                    c("cs_item_sk", 1.0, 9_000.0, 18_000.0, 18_000.0, 4.0),
                    c("cs_bill_customer_sk", 1.0, 50_000.0, 100_000.0, 100_000.0, 4.0),
                    c("cs_call_center_sk", 1.0, 3.0, 6.0, 6.0, 4.0),
                ],
            },
            Table {
                name: "catalog_returns".into(),
                base_rows: 144_067.0,
                scales: true,
                row_width: 130.0,
                columns: vec![
                    c("cr_returned_date_sk", 2_450_821.0, 2_451_860.0, 2_452_924.0, 2_100.0, 4.0),
                    c("cr_item_sk", 1.0, 9_000.0, 18_000.0, 18_000.0, 4.0),
                ],
            },
            Table {
                name: "web_sales".into(),
                base_rows: 719_384.0,
                scales: true,
                row_width: 170.0,
                columns: vec![
                    c("ws_sold_date_sk", 2_450_816.0, 2_451_730.0, 2_452_642.0, 1_823.0, 4.0),
                    c("ws_item_sk", 1.0, 9_000.0, 18_000.0, 18_000.0, 4.0),
                    c("ws_bill_customer_sk", 1.0, 50_000.0, 100_000.0, 100_000.0, 4.0),
                    c("ws_web_page_sk", 1.0, 30.0, 60.0, 60.0, 4.0),
                ],
            },
            Table {
                name: "web_returns".into(),
                base_rows: 71_763.0,
                scales: true,
                row_width: 120.0,
                columns: vec![
                    c("wr_returned_date_sk", 2_450_819.0, 2_451_870.0, 2_453_000.0, 2_185.0, 4.0),
                    c("wr_item_sk", 1.0, 9_000.0, 18_000.0, 18_000.0, 4.0),
                ],
            },
            Table {
                name: "inventory".into(),
                base_rows: 11_745_000.0,
                scales: true,
                row_width: 16.0,
                columns: vec![
                    c("inv_date_sk", 2_450_815.0, 2_451_553.0, 2_452_635.0, 261.0, 4.0),
                    c("inv_item_sk", 1.0, 9_000.0, 18_000.0, 18_000.0, 4.0),
                    c("inv_quantity_on_hand", 0.0, 500.0, 1_000.0, 1_001.0, 4.0),
                ],
            },
        ];
        let mut cat = Catalog {
            workload: Workload::TpcDs,
            scale_factor,
            tables,
            indexes: Vec::new(),
            buffer_pool_pages: 1_048_576.0,
            work_mem_bytes: 64.0 * 1024.0 * 1024.0,
        };
        cat.indexes = vec![
            Index { name: "pk_date_dim".into(), table: cat.table_id("date_dim"), column: 0, clustered: true },
            Index { name: "pk_item".into(), table: cat.table_id("item"), column: 0, clustered: true },
            Index { name: "pk_customer".into(), table: cat.table_id("customer"), column: 0, clustered: true },
            Index { name: "pk_customer_address".into(), table: cat.table_id("customer_address"), column: 0, clustered: true },
            Index { name: "idx_ss_sold_date".into(), table: cat.table_id("store_sales"), column: 0, clustered: true },
            Index { name: "idx_ss_item".into(), table: cat.table_id("store_sales"), column: 1, clustered: false },
            Index { name: "idx_ss_customer".into(), table: cat.table_id("store_sales"), column: 2, clustered: false },
            Index { name: "idx_cs_sold_date".into(), table: cat.table_id("catalog_sales"), column: 0, clustered: true },
            Index { name: "idx_cs_item".into(), table: cat.table_id("catalog_sales"), column: 1, clustered: false },
            Index { name: "idx_ws_sold_date".into(), table: cat.table_id("web_sales"), column: 0, clustered: true },
            Index { name: "idx_ws_item".into(), table: cat.table_id("web_sales"), column: 1, clustered: false },
            Index { name: "idx_inv_date".into(), table: cat.table_id("inventory"), column: 0, clustered: true },
            Index { name: "idx_sr_item".into(), table: cat.table_id("store_returns"), column: 1, clustered: false },
        ];
        cat
    }

    /// Convenience constructor from a [`Workload`] tag.
    pub fn for_workload(workload: Workload, scale_factor: f64) -> Catalog {
        match workload {
            Workload::TpcH => Catalog::tpch(scale_factor),
            Workload::TpcDs => Catalog::tpcds(scale_factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpch_has_eight_tables() {
        let cat = Catalog::tpch(1.0);
        assert_eq!(cat.num_tables(), 8);
        assert_eq!(cat.table(cat.table_id("lineitem")).base_rows as u64, 6_001_215);
    }

    #[test]
    fn scale_factor_scales_fact_tables_only() {
        let cat = Catalog::tpch(100.0);
        let lineitem = cat.table_id("lineitem");
        let region = cat.table_id("region");
        assert_eq!(cat.rows(lineitem), 6_001_215.0 * 100.0);
        assert_eq!(cat.rows(region), 5.0);
    }

    #[test]
    fn pages_are_positive_and_follow_width() {
        let cat = Catalog::tpch(1.0);
        let lineitem = cat.table_id("lineitem");
        let pages = cat.pages(lineitem);
        assert!(pages > 90_000.0 && pages < 100_000.0, "pages = {pages}");
    }

    #[test]
    fn tpcds_catalog_is_consistent() {
        let cat = Catalog::tpcds(1.0);
        assert!(cat.num_tables() >= 20);
        for (i, t) in cat.tables.iter().enumerate() {
            assert!(!t.columns.is_empty(), "table {} has no columns", t.name);
            assert!(cat.rows(i) >= 1.0);
            for col in &t.columns {
                assert!(col.min <= col.median && col.median <= col.max, "{}.{}", t.name, col.name);
            }
        }
    }

    #[test]
    fn indexes_reference_valid_tables_and_columns() {
        for cat in [Catalog::tpch(1.0), Catalog::tpcds(1.0)] {
            for ix in &cat.indexes {
                assert!(ix.table < cat.num_tables());
                assert!(ix.column < cat.table(ix.table).columns.len(), "{}", ix.name);
            }
        }
    }

    #[test]
    fn index_lookup_by_column_works() {
        let cat = Catalog::tpch(1.0);
        let lineitem = cat.table_id("lineitem");
        let shipdate_col = 3;
        let ix = cat.index_on(lineitem, shipdate_col).expect("shipdate index");
        assert_eq!(cat.indexes[ix].name, "idx_lineitem_shipdate");
        assert_eq!(cat.index_on(lineitem, 5), None);
    }
}
