//! Physical plan operators and their properties.
//!
//! The operator vocabulary mirrors what PostgreSQL's `EXPLAIN` reports and
//! what the paper's Table 2 featurizes: scans (sequential or index), joins
//! (nested-loop / hash / merge, with join type and parent relationship),
//! hash build nodes, sorts, aggregates, filters (selections), materialize
//! and limit nodes.
//!
//! Each operator belongs to a logical *family* ([`OpKind`]); the
//! plan-structured network assigns one neural unit per family (paper §4.1),
//! with the physical variant (e.g. hash vs. nested-loop join) one-hot
//! encoded inside the family's feature vector.

use crate::catalog::{IndexId, TableId};
use serde::{Deserialize, Serialize};

/// Logical operator family — the key for neural-unit weight sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// Leaf access to a base relation (sequential or index scan).
    Scan,
    /// Binary join (nested loop, hash or merge).
    Join,
    /// Hash-table build side of a hash join.
    Hash,
    /// Sort (quicksort, top-N heapsort or external merge).
    Sort,
    /// Aggregation (plain, sorted or hashed).
    Aggregate,
    /// Intermediate selection/filter.
    Filter,
    /// Materialization of an intermediate result.
    Materialize,
    /// Row-limit node.
    Limit,
}

impl OpKind {
    /// All families, in a stable order (used for unit indexing and reports).
    pub const ALL: [OpKind; 8] = [
        OpKind::Scan,
        OpKind::Join,
        OpKind::Hash,
        OpKind::Sort,
        OpKind::Aggregate,
        OpKind::Filter,
        OpKind::Materialize,
        OpKind::Limit,
    ];

    /// Stable index of this family in [`OpKind::ALL`].
    pub fn index(self) -> usize {
        OpKind::ALL.iter().position(|k| *k == self).expect("kind in ALL")
    }

    /// Number of children nodes of this family always has.
    pub fn arity(self) -> usize {
        match self {
            OpKind::Scan => 0,
            OpKind::Join => 2,
            _ => 1,
        }
    }

    /// `EXPLAIN`-style display name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Scan => "Scan",
            OpKind::Join => "Join",
            OpKind::Hash => "Hash",
            OpKind::Sort => "Sort",
            OpKind::Aggregate => "Aggregate",
            OpKind::Filter => "Filter",
            OpKind::Materialize => "Materialize",
            OpKind::Limit => "Limit",
        }
    }
}

/// How a scan accesses its relation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScanMethod {
    /// Full sequential heap scan.
    Seq,
    /// B-tree index scan.
    Index {
        /// Which index is used ("Index Name" feature).
        index: IndexId,
        /// Scan direction ("Scan Direction" feature).
        forward: bool,
    },
}

/// Physical join algorithm (one-hot inside the join unit's features).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinAlgorithm {
    /// Tuple-at-a-time nested loops.
    NestedLoop,
    /// Build/probe hash join (build side is a child [`OpKind::Hash`] node).
    Hash,
    /// Merge join over sorted inputs.
    Merge,
}

/// Logical join type ("Join Type" in Table 2: semi, inner, anti, full).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinType {
    /// Inner join.
    Inner,
    /// Semi join (EXISTS-style).
    Semi,
    /// Anti join (NOT EXISTS-style).
    Anti,
    /// Full outer join.
    Full,
}

/// Relationship of a node to its join parent ("Parent Relationship").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParentRel {
    /// Not below a join.
    None,
    /// Inner (build/lookup) input of the parent join.
    Inner,
    /// Outer (probe/driving) input of the parent join.
    Outer,
    /// Subquery input.
    Subquery,
}

/// Sorting algorithm ("Sort Method": quicksort, top-N heapsort, external).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SortMethod {
    /// In-memory quicksort.
    Quicksort,
    /// Bounded top-N heapsort (under a Limit).
    TopN,
    /// External merge sort (spills to disk).
    External,
}

/// Hash-table organisation ("Hash Algorithm").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HashAlgorithm {
    /// Linear probing.
    Linear,
    /// Separate chaining.
    Chained,
}

/// Aggregation strategy ("Strategy": plain, sorted, hashed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggStrategy {
    /// Single-group aggregate (no GROUP BY).
    Plain,
    /// Group aggregate over sorted input.
    Sorted,
    /// Hash aggregate.
    Hashed,
}

/// Aggregate function ("Operator": max, min, avg, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggOp {
    /// COUNT(*)
    Count,
    /// SUM(expr)
    Sum,
    /// AVG(expr)
    Avg,
    /// MIN(expr)
    Min,
    /// MAX(expr)
    Max,
}

/// A physical operator with the properties `EXPLAIN` would report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operator {
    /// Leaf scan of a base relation.
    Scan {
        /// Relation being read ("Relation Name" feature).
        table: TableId,
        /// Access method.
        method: ScanMethod,
        /// Column the pushed-down predicate applies to, if any.
        predicate_col: Option<usize>,
    },
    /// Intermediate selection.
    Filter {
        /// Whether the filter may run in parallel ("parallelism flag").
        parallel: bool,
    },
    /// Binary join.
    Join {
        /// Physical algorithm.
        algo: JoinAlgorithm,
        /// Logical join type.
        jtype: JoinType,
        /// This node's relationship to *its* parent join (if any).
        parent_rel: ParentRel,
    },
    /// Hash build node under a hash join's inner input.
    Hash {
        /// Number of hash buckets.
        buckets: f64,
        /// Hashing algorithm.
        algo: HashAlgorithm,
    },
    /// Sort node.
    Sort {
        /// Ordinal of the sort key (one-hot "Sort Key" feature).
        key: usize,
        /// Sorting algorithm.
        method: SortMethod,
    },
    /// Aggregation node.
    Aggregate {
        /// Strategy.
        strategy: AggStrategy,
        /// Participates in parallel partial aggregation ("Partial Mode").
        partial: bool,
        /// Aggregate function.
        op: AggOp,
    },
    /// Materialize node.
    Materialize,
    /// Limit node.
    Limit {
        /// Maximum number of rows to emit.
        count: f64,
    },
}

impl Operator {
    /// The logical family this operator belongs to.
    pub fn kind(&self) -> OpKind {
        match self {
            Operator::Scan { .. } => OpKind::Scan,
            Operator::Filter { .. } => OpKind::Filter,
            Operator::Join { .. } => OpKind::Join,
            Operator::Hash { .. } => OpKind::Hash,
            Operator::Sort { .. } => OpKind::Sort,
            Operator::Aggregate { .. } => OpKind::Aggregate,
            Operator::Materialize => OpKind::Materialize,
            Operator::Limit { .. } => OpKind::Limit,
        }
    }

    /// PostgreSQL-flavoured display name (e.g. "Hash Join", "Seq Scan").
    pub fn display_name(&self) -> String {
        match self {
            Operator::Scan { method: ScanMethod::Seq, .. } => "Seq Scan".to_string(),
            Operator::Scan { method: ScanMethod::Index { .. }, .. } => "Index Scan".to_string(),
            Operator::Filter { .. } => "Filter".to_string(),
            Operator::Join { algo, .. } => match algo {
                JoinAlgorithm::NestedLoop => "Nested Loop".to_string(),
                JoinAlgorithm::Hash => "Hash Join".to_string(),
                JoinAlgorithm::Merge => "Merge Join".to_string(),
            },
            Operator::Hash { .. } => "Hash".to_string(),
            Operator::Sort { method, .. } => match method {
                SortMethod::Quicksort => "Sort (quicksort)".to_string(),
                SortMethod::TopN => "Sort (top-N heapsort)".to_string(),
                SortMethod::External => "Sort (external merge)".to_string(),
            },
            Operator::Aggregate { strategy, .. } => match strategy {
                AggStrategy::Plain => "Aggregate".to_string(),
                AggStrategy::Sorted => "GroupAggregate".to_string(),
                AggStrategy::Hashed => "HashAggregate".to_string(),
            },
            Operator::Materialize => "Materialize".to_string(),
            Operator::Limit { .. } => "Limit".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_is_in_all_exactly_once() {
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn arity_matches_family_semantics() {
        assert_eq!(OpKind::Scan.arity(), 0);
        assert_eq!(OpKind::Join.arity(), 2);
        assert_eq!(OpKind::Sort.arity(), 1);
        assert_eq!(OpKind::Limit.arity(), 1);
    }

    #[test]
    fn operator_kind_mapping() {
        let j = Operator::Join {
            algo: JoinAlgorithm::Hash,
            jtype: JoinType::Inner,
            parent_rel: ParentRel::None,
        };
        assert_eq!(j.kind(), OpKind::Join);
        assert_eq!(j.display_name(), "Hash Join");
        let s = Operator::Scan { table: 0, method: ScanMethod::Seq, predicate_col: None };
        assert_eq!(s.kind(), OpKind::Scan);
        assert_eq!(s.display_name(), "Seq Scan");
    }
}
