//! The executor: a ground-truth latency simulator.
//!
//! Plays the role the paper's PostgreSQL testbed plays: given a physical
//! plan (with *true* cardinalities computed by the optimizer from the hidden
//! spec parameters), it assigns every node an observed latency. Latencies
//! follow analytic per-operator models with the regime switches that make
//! real systems hard to predict from linear cost models:
//!
//! * **cold-cache penalties** — the paper executes every query from a cold
//!   cache; first touches of a relation pay full I/O prices, repeated
//!   touches within the same plan hit the buffer pool;
//! * **memory spills** — hash builds, hash aggregates, sorts and
//!   materializations past `work_mem` switch to multi-pass disk algorithms;
//! * **hash-table pressure** — probe costs grow with the true
//!   build-rows-per-bucket ratio;
//! * **per-relation factors** — hidden per-table CPU multipliers (row
//!   unpacking costs not derivable from row width alone), learnable only
//!   from the relation's identity;
//! * **noise** — per-operator and per-query lognormal noise.
//!
//! All latencies are **subtree-inclusive** (PostgreSQL `actual total time`),
//! so the root latency is the query latency, matching what Equation 7 of
//! the paper supervises.

use crate::catalog::{Catalog, TableId, PAGE_SIZE};
use crate::operators::{
    AggStrategy, JoinAlgorithm, Operator, ScanMethod, SortMethod,
};
use crate::plan::PlanNode;
use rand::Rng;
use std::collections::HashSet;

/// Latency-model constants, in milliseconds. These play the role of the
/// hardware profile of the paper's testbed (Xeon E5-2640 v4, 32 GB RAM,
/// SSD); changing them rescales latencies without changing the learning
/// problem.
pub mod latency_model {
    /// Sequential page read, cold cache.
    pub const COLD_SEQ_PAGE_MS: f64 = 0.020;
    /// Sequential page read, buffered.
    pub const WARM_SEQ_PAGE_MS: f64 = 0.002;
    /// Random page read, cold cache.
    pub const COLD_RANDOM_IO_MS: f64 = 0.080;
    /// Random page read, buffered.
    pub const WARM_RANDOM_IO_MS: f64 = 0.010;
    /// Spill-file page write+read (amortized per page per pass).
    pub const SPILL_PAGE_MS: f64 = 0.025;
    /// Per-tuple CPU cost of a scan.
    pub const SCAN_ROW_MS: f64 = 0.000_10;
    /// Per-tuple CPU cost of evaluating a predicate.
    pub const PRED_ROW_MS: f64 = 0.000_06;
    /// Per-pair CPU cost of a nested-loop comparison.
    pub const NL_PAIR_MS: f64 = 0.000_02;
    /// Per-tuple cost of inserting into a hash table.
    pub const HASH_BUILD_ROW_MS: f64 = 0.000_30;
    /// Per-tuple cost of probing a hash table (at 1 row/bucket).
    pub const HASH_PROBE_ROW_MS: f64 = 0.000_15;
    /// Per-comparison cost of sorting.
    pub const SORT_CMP_MS: f64 = 0.000_05;
    /// Per-tuple cost of a merge-join step.
    pub const MERGE_ROW_MS: f64 = 0.000_08;
    /// Per-tuple cost of aggregate accumulation.
    pub const AGG_ROW_MS: f64 = 0.000_08;
    /// Per-group cost of aggregate finalization.
    pub const AGG_GROUP_MS: f64 = 0.000_40;
    /// Per-tuple cost of emitting an output row.
    pub const EMIT_ROW_MS: f64 = 0.000_03;
    /// B-tree descent cost per index lookup.
    pub const BTREE_DESCENT_MS: f64 = 0.05;
    /// Standard deviation of per-operator lognormal noise.
    pub const OP_NOISE_SIGMA: f64 = 0.08;
    /// Standard deviation of per-query lognormal noise (system state).
    pub const QUERY_NOISE_SIGMA: f64 = 0.12;
    /// Per-concurrent-query slowdown of CPU-bound work (cache pollution,
    /// scheduler overhead) in the §8 concurrency extension.
    pub const CPU_CONTENTION_PER_QUERY: f64 = 0.12;
    /// Per-concurrent-query slowdown of I/O-bound work (shared disk
    /// bandwidth) in the §8 concurrency extension.
    pub const IO_CONTENTION_PER_QUERY: f64 = 0.45;
}

use latency_model::*;

/// Hidden per-relation CPU multiplier in `[0.5, 2.0]`.
///
/// Models per-table row-unpacking costs (compression, varlena columns,
/// TOAST) that are not derivable from the row width. Deterministic in the
/// table name so the factor is a stable property of the database — exactly
/// the kind of signal the relation one-hot feature lets QPPNet learn,
/// while the baselines' resource features cannot see it.
pub fn relation_cpu_factor(catalog: &Catalog, table: TableId) -> f64 {
    let name = &catalog.table(table).name;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    0.5 + (h % 1500) as f64 / 1000.0
}

/// Hidden locality factor of an operator's *output* stream.
///
/// Downstream per-tuple CPU costs depend on how cache-friendly the input
/// stream is: sorted/clustered/materialized inputs are cheap to consume,
/// hash-join output (scattered pointers) is expensive. This is an
/// *inter-operator interaction*: the parent's latency depends on the
/// child's operator identity, which QPPNet's learned data vectors can
/// carry upward but per-operator feature models cannot express.
pub fn output_locality(node: &PlanNode) -> f64 {
    match &node.op {
        Operator::Scan { method: ScanMethod::Seq, .. } => 1.0,
        Operator::Scan { method: ScanMethod::Index { .. }, .. } => 0.75,
        Operator::Sort { .. } => 0.55,
        Operator::Materialize => 0.7,
        Operator::Join { algo: JoinAlgorithm::Merge, .. } => 0.8,
        Operator::Join { algo: JoinAlgorithm::Hash, .. } => 1.6,
        Operator::Join { algo: JoinAlgorithm::NestedLoop, .. } => 1.15,
        Operator::Hash { .. } => 1.3,
        Operator::Aggregate { strategy: AggStrategy::Hashed, .. } => 1.5,
        Operator::Aggregate { .. } => 0.85,
        // Filters and limits pass their input through untouched.
        Operator::Filter { .. } | Operator::Limit { .. } => {
            node.children.first().map(output_locality).unwrap_or(1.0)
        }
    }
}

/// Samples `exp(N(0, sigma))` lognormal noise.
fn lognormal(rng: &mut impl Rng, sigma: f64) -> f64 {
    // Box-Muller from two uniforms.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (z * sigma).exp()
}

/// The latency simulator.
pub struct Executor<'a> {
    catalog: &'a Catalog,
}

struct ExecState {
    /// Tables already touched by this query (buffered pages).
    warm: HashSet<TableId>,
    /// Per-query system-state noise factor.
    query_factor: f64,
    /// Multiprogramming level (1.0 = the paper's isolated execution).
    mpl: f64,
    /// Effective per-operator working memory: `work_mem / mpl` — concurrent
    /// queries share the memory budget, so higher load moves spill
    /// thresholds *down* (a regime interaction, not just a multiplier).
    work_mem: f64,
}

impl<'a> Executor<'a> {
    /// Creates an executor over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Executor { catalog }
    }

    /// Executes (simulates) `plan` in place: fills `actual.latency_ms` and
    /// `actual.self_latency_ms` on every node. Returns the query latency
    /// (root-inclusive time) in milliseconds.
    ///
    /// Cardinalities (`actual.rows`) must already be present (the optimizer
    /// computes them from the spec's hidden true parameters).
    pub fn run(&self, plan: &mut PlanNode, rng: &mut impl Rng) -> f64 {
        self.run_with_load(plan, 1.0, rng)
    }

    /// Executes `plan` under a multiprogramming level of `mpl` concurrent
    /// queries (the paper's §8 concurrent-query extension; `mpl = 1.0`
    /// reproduces [`Executor::run`] exactly).
    ///
    /// Interference has three components:
    ///
    /// * CPU-bound work slows by [`CPU_CONTENTION_PER_QUERY`] per
    ///   co-runner (cache pollution, scheduling);
    /// * I/O-bound work slows by [`IO_CONTENTION_PER_QUERY`] per
    ///   co-runner (shared disk bandwidth) — operators pay in proportion
    ///   to how I/O-bound they are;
    /// * the per-operator memory budget shrinks to `work_mem / mpl`,
    ///   moving hash/sort/aggregate **spill thresholds down** — a regime
    ///   change a linear slowdown model cannot express.
    ///
    /// The in-effect load is recorded on every node
    /// ([`PlanNode::concurrency`]) so load-aware featurization can see it.
    ///
    /// # Panics
    /// Panics if `mpl < 1.0`.
    pub fn run_with_load(&self, plan: &mut PlanNode, mpl: f64, rng: &mut impl Rng) -> f64 {
        assert!(mpl >= 1.0, "multiprogramming level must be ≥ 1");
        let mut state = ExecState {
            warm: HashSet::new(),
            query_factor: lognormal(rng, QUERY_NOISE_SIGMA),
            mpl,
            work_mem: self.catalog.work_mem_bytes / mpl,
        };
        plan.visit_postorder_mut(&mut |n| n.concurrency = mpl);
        self.exec_node(plan, &mut state, rng)
    }

    fn exec_node(&self, node: &mut PlanNode, state: &mut ExecState, rng: &mut impl Rng) -> f64 {
        // Children first (bottom-up), accumulating inclusive time.
        let mut child_time = 0.0;
        let child_true_rows: Vec<f64> = node.children.iter().map(|c| c.actual.rows).collect();
        for c in &mut node.children {
            child_time += self.exec_node(c, state, rng);
        }

        let self_ms = self.self_latency(node, &child_true_rows, state)
            * Self::interference(node, state.mpl)
            * lognormal(rng, OP_NOISE_SIGMA)
            * state.query_factor;
        node.actual.self_latency_ms = self_ms;
        node.actual.latency_ms = child_time + self_ms;
        node.actual.latency_ms
    }

    /// Load multiplier for one operator at multiprogramming level `mpl`.
    ///
    /// Each operator family pays CPU contention plus I/O contention scaled
    /// by how I/O-bound the family is.
    fn interference(node: &PlanNode, mpl: f64) -> f64 {
        if mpl <= 1.0 {
            return 1.0;
        }
        let io_weight = match &node.op {
            // Scans and materializations are dominated by I/O.
            Operator::Scan { .. } => 0.8,
            Operator::Materialize => 0.6,
            // Spill-prone blocking operators are partially I/O-bound.
            Operator::Hash { .. } => 0.35,
            Operator::Sort { .. } => 0.40,
            Operator::Aggregate { strategy: AggStrategy::Hashed, .. } => 0.30,
            // Pure CPU pipelines.
            Operator::Join { .. }
            | Operator::Aggregate { .. }
            | Operator::Filter { .. }
            | Operator::Limit { .. } => 0.10,
        };
        let extra = mpl - 1.0;
        1.0 + extra * (CPU_CONTENTION_PER_QUERY * (1.0 - io_weight)
            + IO_CONTENTION_PER_QUERY * io_weight)
    }

    /// Analytic self-latency of one operator, in milliseconds.
    fn self_latency(&self, node: &PlanNode, child_rows: &[f64], state: &mut ExecState) -> f64 {
        let out_rows = node.actual.rows;
        let in_rows = child_rows.first().copied().unwrap_or(0.0);
        match &node.op {
            Operator::Scan { table, method, predicate_col } => {
                let t = *table;
                let table_rows = self.catalog.rows(t);
                let pages = self.catalog.pages(t);
                let cold = state.warm.insert(t);
                let cpu_factor = relation_cpu_factor(self.catalog, t);
                match method {
                    ScanMethod::Seq => {
                        let page_ms = if cold { COLD_SEQ_PAGE_MS } else { WARM_SEQ_PAGE_MS };
                        let io = pages * page_ms;
                        let mut cpu = table_rows * SCAN_ROW_MS * cpu_factor;
                        if predicate_col.is_some() {
                            cpu += table_rows * PRED_ROW_MS;
                        }
                        io + cpu + out_rows * EMIT_ROW_MS
                    }
                    ScanMethod::Index { index, .. } => {
                        let ix = &self.catalog.indexes[*index];
                        let matched = out_rows;
                        let io = if ix.clustered {
                            let page_ms = if cold { COLD_SEQ_PAGE_MS } else { WARM_SEQ_PAGE_MS };
                            (pages * (matched / table_rows).min(1.0)).max(1.0) * page_ms
                        } else {
                            let io_ms = if cold { COLD_RANDOM_IO_MS } else { WARM_RANDOM_IO_MS };
                            matched.min(pages * 4.0) * io_ms
                        };
                        BTREE_DESCENT_MS
                            + io
                            + matched * SCAN_ROW_MS * 1.2 * cpu_factor
                            + matched * EMIT_ROW_MS
                    }
                }
            }
            Operator::Filter { parallel } => {
                let factor = if *parallel { 0.35 } else { 1.0 };
                let loc = node.children.first().map(output_locality).unwrap_or(1.0);
                in_rows * PRED_ROW_MS * 1.5 * factor * loc + out_rows * EMIT_ROW_MS
            }
            Operator::Join { algo, .. } => {
                let outer = child_rows.first().copied().unwrap_or(1.0);
                let inner = child_rows.get(1).copied().unwrap_or(1.0);
                let outer_loc =
                    node.children.first().map(output_locality).unwrap_or(1.0);
                let inner_loc = node.children.get(1).map(output_locality).unwrap_or(1.0);
                match algo {
                    JoinAlgorithm::NestedLoop => {
                        // Materialized inners make rescans cheap (factor
                        // captured in the pair constant; unmaterialized
                        // scans would be re-executed, but the optimizer
                        // always materializes non-leaf inners).
                        outer * inner * NL_PAIR_MS * inner_loc + out_rows * EMIT_ROW_MS
                    }
                    JoinAlgorithm::Hash => {
                        // The inner child is the Hash node; its build-side
                        // pressure raises probe costs.
                        let (buckets, build_rows) = match &node.children[1].op {
                            Operator::Hash { buckets, .. } => {
                                (*buckets, node.children[1].actual.rows)
                            }
                            _ => (1024.0_f64.max(inner), inner),
                        };
                        let pressure = (build_rows / buckets).clamp(1.0, 64.0);
                        let build_bytes = build_rows * node.children[1].est.width;
                        let spilled = build_bytes > state.work_mem;
                        let spill_ms = if spilled {
                            // Probe side written and re-read per extra pass.
                            let probe_bytes = outer * node.children[0].est.width;
                            let passes =
                                (build_bytes / state.work_mem).log2().max(1.0);
                            probe_bytes / PAGE_SIZE * SPILL_PAGE_MS * passes
                        } else {
                            0.0
                        };
                        outer * HASH_PROBE_ROW_MS * pressure * outer_loc
                            + spill_ms
                            + out_rows * EMIT_ROW_MS
                    }
                    JoinAlgorithm::Merge => {
                        (outer + inner) * MERGE_ROW_MS * 0.5 * (outer_loc + inner_loc)
                            + out_rows * EMIT_ROW_MS
                    }
                }
            }
            Operator::Hash { .. } => {
                let build_rows = in_rows;
                let bytes = build_rows * node.est.width;
                let mut ms = build_rows * HASH_BUILD_ROW_MS;
                if bytes > state.work_mem {
                    let passes = (bytes / state.work_mem).log2().max(1.0);
                    ms += bytes / PAGE_SIZE * SPILL_PAGE_MS * passes;
                }
                ms
            }
            Operator::Sort { method, .. } => {
                let n = in_rows.max(2.0);
                let bytes = n * node.est.width;
                let loc = node.children.first().map(output_locality).unwrap_or(1.0);
                match method {
                    SortMethod::TopN => {
                        // Bounded heap: never spills regardless of load.
                        let k = out_rows.max(2.0).min(n);
                        n * k.log2() * SORT_CMP_MS * loc + out_rows * EMIT_ROW_MS
                    }
                    // The planner picks quicksort vs. external from
                    // *estimates*; the executor switches at runtime based on
                    // the *actual* bytes vs. the effective memory budget
                    // (exactly PostgreSQL's behaviour, and the reason
                    // planned-quicksort nodes sometimes spill).
                    SortMethod::Quicksort | SortMethod::External => {
                        let spill = if bytes > state.work_mem {
                            let passes = (bytes / state.work_mem).log2().max(1.0) + 1.0;
                            bytes / PAGE_SIZE * SPILL_PAGE_MS * passes
                        } else {
                            0.0
                        };
                        n * n.log2() * SORT_CMP_MS * loc + spill + out_rows * EMIT_ROW_MS
                    }
                }
            }
            Operator::Aggregate { strategy, partial, .. } => {
                let groups = out_rows;
                let parallel_factor = if *partial { 0.6 } else { 1.0 };
                let loc = node.children.first().map(output_locality).unwrap_or(1.0);
                let parallel_factor = parallel_factor * loc;
                let base = match strategy {
                    AggStrategy::Plain => in_rows * AGG_ROW_MS,
                    AggStrategy::Sorted => in_rows * (AGG_ROW_MS + SORT_CMP_MS),
                    AggStrategy::Hashed => {
                        let bytes = groups * node.est.width * 1.5;
                        let spill = if bytes > state.work_mem {
                            2.0 * in_rows * node.est.width / PAGE_SIZE * SPILL_PAGE_MS
                        } else {
                            0.0
                        };
                        in_rows * (AGG_ROW_MS + HASH_BUILD_ROW_MS * 0.5) + spill
                    }
                };
                base * parallel_factor + groups * AGG_GROUP_MS + out_rows * EMIT_ROW_MS
            }
            Operator::Materialize => {
                let bytes = in_rows * node.est.width;
                let spill = if bytes > state.work_mem {
                    2.0 * bytes / PAGE_SIZE * SPILL_PAGE_MS
                } else {
                    0.0
                };
                in_rows * EMIT_ROW_MS * 2.0 + spill
            }
            Operator::Limit { .. } => out_rows * EMIT_ROW_MS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::optimizer::Optimizer;
    use crate::spec::{FilterSpec, JoinCard, JoinInput, JoinSpec, QuerySpec, TableTerm};
    use crate::operators::JoinType;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn scan_spec(cat: &Catalog, table: &str) -> QuerySpec {
        QuerySpec::single(TableTerm { table: cat.table_id(table), filter: None })
    }

    #[test]
    fn latencies_are_positive_and_inclusive() {
        let cat = Catalog::tpch(1.0);
        let spec = QuerySpec {
            terms: vec![
                TableTerm { table: cat.table_id("lineitem"), filter: None },
                TableTerm { table: cat.table_id("orders"), filter: None },
            ],
            join: JoinInput::Join(Box::new(JoinSpec {
                left: JoinInput::Term(0),
                right: JoinInput::Term(1),
                jtype: JoinType::Inner,
                card: JoinCard::ForeignKey { pk_table: cat.table_id("orders"), skew: 1.0 },
            })),
            post_filter: None,
            agg: None,
            sort: None,
            limit: None,
        };
        let mut plan = Optimizer::new(&cat).build(&spec, &mut rng(1));
        let total = Executor::new(&cat).run(&mut plan, &mut rng(2));
        assert!(total > 0.0);
        assert_eq!(total, plan.actual.latency_ms);
        // Inclusive: parent >= sum of children.
        fn check(node: &crate::plan::PlanNode) {
            let child_sum: f64 = node.children.iter().map(|c| c.actual.latency_ms).sum();
            assert!(node.actual.latency_ms >= child_sum);
            assert!(node.actual.self_latency_ms > 0.0);
            for c in &node.children {
                check(c);
            }
        }
        check(&plan);
    }

    #[test]
    fn bigger_tables_take_longer() {
        let cat = Catalog::tpch(1.0);
        let mut small = Optimizer::new(&cat).build(&scan_spec(&cat, "supplier"), &mut rng(1));
        let mut big = Optimizer::new(&cat).build(&scan_spec(&cat, "lineitem"), &mut rng(1));
        let ex = Executor::new(&cat);
        let t_small = ex.run(&mut small, &mut rng(3));
        let t_big = ex.run(&mut big, &mut rng(3));
        assert!(t_big > t_small * 50.0, "small={t_small} big={t_big}");
    }

    #[test]
    fn scale_factor_scales_latency() {
        let sf1 = Catalog::tpch(1.0);
        let sf10 = Catalog::tpch(10.0);
        let mut p1 = Optimizer::new(&sf1).build(&scan_spec(&sf1, "lineitem"), &mut rng(1));
        let mut p10 = Optimizer::new(&sf10).build(&scan_spec(&sf10, "lineitem"), &mut rng(1));
        let t1 = Executor::new(&sf1).run(&mut p1, &mut rng(4));
        let t10 = Executor::new(&sf10).run(&mut p10, &mut rng(4));
        assert!(t10 > t1 * 5.0 && t10 < t1 * 20.0, "t1={t1} t10={t10}");
    }

    #[test]
    fn selective_index_scan_is_faster_than_full_scan() {
        let cat = Catalog::tpch(1.0);
        let filtered = QuerySpec::single(TableTerm {
            table: cat.table_id("lineitem"),
            filter: Some(FilterSpec { col: 3, true_sel: 0.0005, est_sel: 0.0005, separate_node: false }),
        });
        let mut pf = Optimizer::new(&cat).build(&filtered, &mut rng(1));
        let mut pa = Optimizer::new(&cat).build(&scan_spec(&cat, "lineitem"), &mut rng(1));
        let ex = Executor::new(&cat);
        let tf = ex.run(&mut pf, &mut rng(5));
        let ta = ex.run(&mut pa, &mut rng(5));
        assert!(tf < ta / 4.0, "filtered={tf} full={ta}");
    }

    #[test]
    fn noise_makes_repeated_runs_differ_slightly() {
        let cat = Catalog::tpch(1.0);
        let ex = Executor::new(&cat);
        let base = Optimizer::new(&cat).build(&scan_spec(&cat, "orders"), &mut rng(1));
        let mut a = base.clone();
        let mut b = base.clone();
        let ta = ex.run(&mut a, &mut rng(100));
        let tb = ex.run(&mut b, &mut rng(200));
        assert_ne!(ta, tb);
        let ratio = ta / tb;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn same_seed_is_deterministic() {
        let cat = Catalog::tpch(1.0);
        let ex = Executor::new(&cat);
        let base = Optimizer::new(&cat).build(&scan_spec(&cat, "orders"), &mut rng(1));
        let mut a = base.clone();
        let mut b = base;
        assert_eq!(ex.run(&mut a, &mut rng(7)), ex.run(&mut b, &mut rng(7)));
    }

    #[test]
    fn relation_cpu_factor_is_stable_and_bounded() {
        let cat = Catalog::tpch(1.0);
        for id in 0..cat.num_tables() {
            let f = relation_cpu_factor(&cat, id);
            assert!((0.5..=2.0).contains(&f));
            assert_eq!(f, relation_cpu_factor(&cat, id));
        }
    }

    #[test]
    fn sort_spills_make_big_sorts_superlinear() {
        // Sorting n rows past work_mem must cost disproportionally more
        // than sorting n/8 rows (external merge passes), beyond the n·log n
        // growth.
        let cat = Catalog::tpch(1.0);
        let ex = Executor::new(&cat);
        let mk = |sel: f64, seed: u64| {
            let spec = QuerySpec {
                terms: vec![TableTerm {
                    table: cat.table_id("lineitem"),
                    filter: Some(FilterSpec {
                        col: 3,
                        true_sel: sel,
                        est_sel: sel,
                        separate_node: false,
                    }),
                }],
                join: crate::spec::JoinInput::Term(0),
                post_filter: None,
                agg: None,
                sort: Some(crate::spec::SortSpec { key: 0 }),
                limit: None,
            };
            let mut plan = Optimizer::new(&cat).build(&spec, &mut rng(seed));
            ex.run(&mut plan, &mut rng(seed + 1));
            // Find the sort node's self time.
            let mut sort_ms = 0.0;
            plan.visit_postorder(&mut |n| {
                if matches!(n.op, crate::operators::Operator::Sort { .. }) {
                    sort_ms = n.actual.self_latency_ms;
                }
            });
            sort_ms
        };
        let small = mk(0.1, 10); // ~600k rows * 90B = fits nowhere near spill? 54MB < 64MB work_mem
        let big = mk(0.8, 10); // ~4.8M rows: definitely spills
        // 8x the rows with spill passes should cost far more than 8x.
        assert!(big > small * 10.0, "small={small} big={big}");
    }

    #[test]
    fn unit_mpl_reproduces_isolated_execution_exactly() {
        let cat = Catalog::tpch(1.0);
        let ex = Executor::new(&cat);
        let base = Optimizer::new(&cat).build(&scan_spec(&cat, "orders"), &mut rng(1));
        let mut a = base.clone();
        let mut b = base;
        let ta = ex.run(&mut a, &mut rng(7));
        let tb = ex.run_with_load(&mut b, 1.0, &mut rng(7));
        assert_eq!(ta, tb);
        assert_eq!(a.concurrency, 1.0);
    }

    #[test]
    fn higher_load_slows_queries_monotonically() {
        let cat = Catalog::tpch(1.0);
        let ex = Executor::new(&cat);
        let base = Optimizer::new(&cat).build(&scan_spec(&cat, "lineitem"), &mut rng(1));
        let mut last = 0.0;
        for mpl in [1.0, 2.0, 4.0, 8.0] {
            let mut p = base.clone();
            let t = ex.run_with_load(&mut p, mpl, &mut rng(3));
            assert!(t > last, "mpl {mpl}: {t} vs {last}");
            assert!(p.concurrency == mpl);
            last = t;
        }
    }

    #[test]
    fn load_is_recorded_on_every_node() {
        let cat = Catalog::tpch(1.0);
        let spec = QuerySpec {
            terms: vec![
                TableTerm { table: cat.table_id("lineitem"), filter: None },
                TableTerm { table: cat.table_id("orders"), filter: None },
            ],
            join: JoinInput::Join(Box::new(JoinSpec {
                left: JoinInput::Term(0),
                right: JoinInput::Term(1),
                jtype: JoinType::Inner,
                card: JoinCard::ForeignKey { pk_table: cat.table_id("orders"), skew: 1.0 },
            })),
            post_filter: None,
            agg: None,
            sort: None,
            limit: None,
        };
        let mut plan = Optimizer::new(&cat).build(&spec, &mut rng(1));
        Executor::new(&cat).run_with_load(&mut plan, 5.0, &mut rng(2));
        plan.visit_postorder(&mut |n| assert_eq!(n.concurrency, 5.0));
    }

    #[test]
    fn io_bound_operators_suffer_more_under_load() {
        // A full lineitem scan (I/O-bound) must degrade by a larger factor
        // than a CPU-bound aggregate-only query section. We compare the
        // scan node's self time ratio against the aggregate node's.
        let cat = Catalog::tpch(1.0);
        let ex = Executor::new(&cat);
        let spec = QuerySpec {
            terms: vec![TableTerm { table: cat.table_id("lineitem"), filter: None }],
            join: crate::spec::JoinInput::Term(0),
            post_filter: None,
            agg: Some(crate::spec::AggSpec {
                op: crate::operators::AggOp::Sum,
                groups: 1.0,
                est_groups: 1.0,
                partial: false,
            }),
            sort: None,
            limit: None,
        };
        let base = Optimizer::new(&cat).build(&spec, &mut rng(1));
        let self_times = |mpl: f64| {
            let mut p = base.clone();
            ex.run_with_load(&mut p, mpl, &mut rng(9));
            let mut scan = 0.0;
            let mut agg = 0.0;
            p.visit_postorder(&mut |n| match n.op.kind() {
                crate::operators::OpKind::Scan => scan = n.actual.self_latency_ms,
                crate::operators::OpKind::Aggregate => agg = n.actual.self_latency_ms,
                _ => {}
            });
            (scan, agg)
        };
        let (scan1, agg1) = self_times(1.0);
        let (scan8, agg8) = self_times(8.0);
        assert!(scan8 / scan1 > agg8 / agg1, "scan {} agg {}", scan8 / scan1, agg8 / agg1);
    }

    #[test]
    fn load_shrinks_work_mem_and_triggers_spills() {
        // A sort that fits in work_mem alone must spill under high MPL,
        // costing disproportionally more than the plain contention factor.
        let cat = Catalog::tpch(1.0);
        let ex = Executor::new(&cat);
        let spec = QuerySpec {
            terms: vec![TableTerm {
                table: cat.table_id("lineitem"),
                filter: Some(FilterSpec {
                    col: 3,
                    true_sel: 0.08,
                    est_sel: 0.08,
                    separate_node: false,
                }),
            }],
            join: crate::spec::JoinInput::Term(0),
            post_filter: None,
            agg: None,
            sort: Some(crate::spec::SortSpec { key: 0 }),
            limit: None,
        };
        let base = Optimizer::new(&cat).build(&spec, &mut rng(2));
        let sort_self = |mpl: f64| {
            let mut p = base.clone();
            ex.run_with_load(&mut p, mpl, &mut rng(11));
            let mut ms = 0.0;
            p.visit_postorder(&mut |n| {
                if matches!(n.op, Operator::Sort { .. }) {
                    ms = n.actual.self_latency_ms;
                }
            });
            ms
        };
        let isolated = sort_self(1.0);
        let loaded = sort_self(16.0);
        // Pure contention would multiply a mostly-CPU sort by
        // ~1 + 15·(0.12·0.6 + 0.45·0.4) ≈ 4.8; spill passes push it
        // far beyond that.
        assert!(loaded > isolated * 6.0, "isolated={isolated} loaded={loaded}");
    }

    #[test]
    fn output_locality_passes_through_filters() {
        let cat = Catalog::tpch(1.0);
        let spec = QuerySpec::single(TableTerm {
            table: cat.table_id("lineitem"),
            filter: Some(FilterSpec { col: 3, true_sel: 0.3, est_sel: 0.3, separate_node: true }),
        });
        let plan = Optimizer::new(&cat).build(&spec, &mut rng(1));
        // Filter on top of a seq scan: locality equals the scan's.
        assert_eq!(output_locality(&plan), output_locality(&plan.children[0]));
    }
}
