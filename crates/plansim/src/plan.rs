//! Query execution plan trees.
//!
//! A [`Plan`] is the unit of training data: a tree of [`PlanNode`]s, each
//! carrying the *optimizer-visible* estimates ([`NodeEst`], what `EXPLAIN`
//! prints before execution — the only thing models may featurize) and the
//! *observed* execution results ([`NodeActual`], what `EXPLAIN ANALYZE`
//! reports — used exclusively for training targets and evaluation).
//!
//! Per-node latencies follow PostgreSQL's `actual total time` convention:
//! they are **inclusive of the node's subtree**, so the root's latency is
//! the query latency. This is exactly the quantity the paper's Equation 7
//! supervises at every node.

use crate::catalog::Workload;
use crate::operators::{OpKind, Operator};
use serde::{Deserialize, Serialize};

/// Optimizer estimates for one plan node (the `EXPLAIN` columns the paper's
/// Table 2 lists for every operator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeEst {
    /// Estimated output row width in bytes ("Plan Width").
    pub width: f64,
    /// Estimated output cardinality ("Plan Rows").
    pub rows: f64,
    /// Estimated memory requirement in bytes ("Plan Buffers").
    pub buffers: f64,
    /// Estimated number of I/Os ("Estimated I/Os").
    pub ios: f64,
    /// Optimizer total cost for this node plus its subtree ("Total Cost").
    pub total_cost: f64,
    /// Estimated selectivity of this node's predicate (1.0 when none).
    pub selectivity: f64,
}

impl NodeEst {
    /// A neutral estimate (used transiently during plan construction).
    pub fn unknown() -> NodeEst {
        NodeEst { width: 0.0, rows: 0.0, buffers: 0.0, ios: 0.0, total_cost: 0.0, selectivity: 1.0 }
    }
}

/// Ground-truth execution results for one plan node (from the simulator; a
/// real deployment would read these from `EXPLAIN ANALYZE`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeActual {
    /// True output cardinality.
    pub rows: f64,
    /// Inclusive latency of this node's subtree, in milliseconds.
    pub latency_ms: f64,
    /// Exclusive (self) latency of this node, in milliseconds.
    pub self_latency_ms: f64,
}

impl NodeActual {
    /// Placeholder before execution.
    pub fn unexecuted() -> NodeActual {
        NodeActual { rows: 0.0, latency_ms: 0.0, self_latency_ms: 0.0 }
    }
}

/// One node of a query execution plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// The physical operator.
    pub op: Operator,
    /// Optimizer estimates (feature source).
    pub est: NodeEst,
    /// Observed execution results (training target / evaluation only).
    pub actual: NodeActual,
    /// Cardinality estimate from an external *learned estimator*, when one
    /// is attached (paper §7: "a technique predicting operator
    /// cardinalities could be easily integrated … by inserting the
    /// cardinality estimate of each operator into its neural unit's input
    /// vector"). See [`crate::cardest`]. `None` = optimizer estimates only.
    #[serde(default)]
    pub learned_rows: Option<f64>,
    /// Multiprogramming level (number of concurrently-running queries,
    /// including this one) in effect when the plan executed — the paper's
    /// §8 concurrent-query extension. `1.0` = isolated execution (the
    /// paper's protocol). Known ahead of execution (an admission
    /// controller sees the current load), so featurizing it is legitimate;
    /// see [`crate::features::Featurizer::with_system_load`].
    #[serde(default = "default_concurrency")]
    pub concurrency: f64,
    /// Child nodes (`OpKind::arity` many).
    pub children: Vec<PlanNode>,
}

fn default_concurrency() -> f64 {
    1.0
}

impl PlanNode {
    /// Creates a node; estimates/actuals are filled by the optimizer and
    /// executor respectively.
    pub fn new(op: Operator, children: Vec<PlanNode>) -> PlanNode {
        PlanNode {
            op,
            est: NodeEst::unknown(),
            actual: NodeActual::unexecuted(),
            learned_rows: None,
            concurrency: 1.0,
            children,
        }
    }

    /// Number of nodes in this subtree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(PlanNode::node_count).sum::<usize>()
    }

    /// Height of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(PlanNode::depth).max().unwrap_or(0)
    }

    /// Visits the subtree in post order (children before parents).
    pub fn visit_postorder<'a>(&'a self, f: &mut impl FnMut(&'a PlanNode)) {
        for c in &self.children {
            c.visit_postorder(f);
        }
        f(self);
    }

    /// Mutable post-order visit.
    pub fn visit_postorder_mut(&mut self, f: &mut impl FnMut(&mut PlanNode)) {
        for c in &mut self.children {
            c.visit_postorder_mut(f);
        }
        f(self);
    }

    /// Collects the nodes of the subtree in post order.
    pub fn postorder(&self) -> Vec<&PlanNode> {
        let mut out = Vec::with_capacity(self.node_count());
        self.visit_postorder(&mut |n| out.push(n));
        out
    }

    /// This subtree's structural signature.
    ///
    /// Two (sub)trees with equal signatures have the same operator *family*
    /// at every position, and therefore identical neural-network shapes —
    /// the equivalence relation behind the paper's plan-based batch
    /// training (§5.1.1). Physical variants and feature values may differ
    /// freely.
    pub fn signature(&self) -> String {
        let mut s = String::with_capacity(self.node_count() * 2);
        self.push_signature(&mut s);
        s
    }

    /// Appends this subtree's structural signature to `out`.
    fn push_signature(&self, out: &mut String) {
        out.push_str(match self.op.kind() {
            OpKind::Scan => "s",
            OpKind::Join => "j",
            OpKind::Hash => "h",
            OpKind::Sort => "o",
            OpKind::Aggregate => "a",
            OpKind::Filter => "f",
            OpKind::Materialize => "m",
            OpKind::Limit => "l",
        });
        if !self.children.is_empty() {
            out.push('(');
            for c in &self.children {
                c.push_signature(out);
            }
            out.push(')');
        }
    }
}

/// A complete, executed query plan with provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Root operator (its `actual.latency_ms` is the query latency).
    pub root: PlanNode,
    /// Benchmark the plan was generated from.
    pub workload: Workload,
    /// Query template that produced the plan (e.g. TPC-DS template 17).
    pub template_id: u32,
    /// Sequence number within its dataset.
    pub query_id: u64,
}

impl Plan {
    /// Total number of operators in the plan.
    pub fn node_count(&self) -> usize {
        self.root.node_count()
    }

    /// Plan tree height.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// The query's observed latency in milliseconds (root-inclusive time).
    pub fn latency_ms(&self) -> f64 {
        self.root.actual.latency_ms
    }

    /// Structural signature for batching equivalence classes.
    pub fn signature(&self) -> String {
        self.root.signature()
    }

    /// Renders the plan in an `EXPLAIN ANALYZE`-like format.
    pub fn explain(&self) -> String {
        fn rec(node: &PlanNode, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            out.push_str(&format!(
                "{pad}-> {}  (rows={:.0} cost={:.1} width={:.0}) (actual rows={:.0} time={:.2}ms)\n",
                node.op.display_name(),
                node.est.rows,
                node.est.total_cost,
                node.est.width,
                node.actual.rows,
                node.actual.latency_ms,
            ));
            for c in &node.children {
                rec(c, indent + 1, out);
            }
        }
        let mut out = String::new();
        rec(&self.root, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{JoinAlgorithm, JoinType, Operator, ParentRel, ScanMethod};

    fn scan(table: usize) -> PlanNode {
        PlanNode::new(Operator::Scan { table, method: ScanMethod::Seq, predicate_col: None }, vec![])
    }

    fn join(l: PlanNode, r: PlanNode) -> PlanNode {
        PlanNode::new(
            Operator::Join {
                algo: JoinAlgorithm::Hash,
                jtype: JoinType::Inner,
                parent_rel: ParentRel::None,
            },
            vec![l, r],
        )
    }

    fn plan(root: PlanNode) -> Plan {
        Plan { root, workload: Workload::TpcH, template_id: 1, query_id: 0 }
    }

    #[test]
    fn node_count_and_depth() {
        let p = plan(join(scan(0), join(scan(1), scan(2))));
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn postorder_visits_children_first() {
        let p = plan(join(scan(0), scan(1)));
        let order: Vec<OpKind> = p.root.postorder().iter().map(|n| n.op.kind()).collect();
        assert_eq!(order, vec![OpKind::Scan, OpKind::Scan, OpKind::Join]);
    }

    #[test]
    fn signatures_distinguish_structure_not_tables() {
        let a = plan(join(scan(0), scan(1)));
        let b = plan(join(scan(7), scan(3)));
        let c = plan(join(scan(0), join(scan(1), scan(2))));
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn signature_distinguishes_left_vs_right_nesting() {
        let left = plan(join(join(scan(0), scan(1)), scan(2)));
        let right = plan(join(scan(0), join(scan(1), scan(2))));
        assert_ne!(left.signature(), right.signature());
    }

    #[test]
    fn explain_renders_every_node() {
        let p = plan(join(scan(0), scan(1)));
        let text = p.explain();
        assert_eq!(text.matches("-> ").count(), 3);
        assert!(text.contains("Hash Join"));
        assert!(text.contains("Seq Scan"));
    }
}
