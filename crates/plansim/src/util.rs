//! Sampling utilities shared by the executor and the workload generators,
//! plus a tiny deterministic hasher for content digests.

use rand::Rng;

/// Minimal FNV-1a accumulator for deterministic content digests (e.g.
/// [`crate::features::Featurizer::digest`] /
/// [`crate::features::Whitener::digest`]). Not a general-purpose hasher —
/// just a stable, dependency-free way to fingerprint numeric state.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh accumulator at the FNV-1a offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one value into the digest.
    pub fn mix(&mut self, bits: u64) {
        self.0 ^= bits;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// The accumulated digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Samples `exp(N(0, sigma))` — multiplicative lognormal noise.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    // Box-Muller from two uniforms.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (z * sigma).exp()
}

/// Samples log-uniformly from `[lo, hi]` (both must be positive).
pub fn loguniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi >= lo, "loguniform needs 0 < lo <= hi");
    if lo == hi {
        return lo;
    }
    (rng.gen_range(lo.ln()..=hi.ln())).exp()
}

/// A `(true, estimated)` selectivity pair: the truth is log-uniform in
/// `[lo, hi]`; the optimizer's estimate is the truth perturbed by
/// lognormal error of width `err_sigma` (clamped to `[1e-8, 1]`).
pub fn sel_pair<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64, err_sigma: f64) -> (f64, f64) {
    let true_sel = loguniform(rng, lo, hi);
    let est_sel = (true_sel * lognormal(rng, err_sigma)).clamp(1e-8, 1.0);
    (true_sel, est_sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn lognormal_is_centered_near_one() {
        let mut r = rng(1);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| lognormal(&mut r, 0.1)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn lognormal_zero_sigma_is_identity() {
        assert_eq!(lognormal(&mut rng(2), 0.0), 1.0);
    }

    #[test]
    fn loguniform_stays_in_bounds() {
        let mut r = rng(3);
        for _ in 0..1000 {
            let v = loguniform(&mut r, 0.001, 0.1);
            assert!((0.001..=0.1).contains(&v));
        }
    }

    #[test]
    fn sel_pair_estimates_track_truth() {
        let mut r = rng(4);
        let mut ratios = Vec::new();
        for _ in 0..1000 {
            let (t, e) = sel_pair(&mut r, 0.01, 0.5, 0.3);
            assert!((0.0..=1.0).contains(&e));
            ratios.push((e / t).ln());
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean.abs() < 0.1, "log-ratio mean {mean}");
    }
}
