//! The query optimizer: lowers a logical [`QuerySpec`] to a physical plan.
//!
//! Mirrors the parts of PostgreSQL's planner that matter for performance
//! prediction: access-path selection (sequential vs. index scan), join
//! algorithm choice (nested loop / hash / merge) driven by a classic cost
//! model, hash-build and materialize node insertion, sort-method selection
//! (quicksort / top-N / external), and aggregate-strategy selection
//! (plain / sorted / hashed).
//!
//! Every node is annotated with `EXPLAIN`-style estimates ([`NodeEst`]):
//! estimated rows are derived from the *estimated* selectivities in the spec
//! under the independence assumption, so estimation errors compound up the
//! tree exactly as they do in a real system. True cardinalities (derived
//! from the spec's hidden true selectivities and join skews) are stored in
//! `actual.rows` for the executor; **prediction models never read them**.

use crate::catalog::{Catalog, PAGE_SIZE};
use crate::operators::{
    AggStrategy, HashAlgorithm, JoinAlgorithm, JoinType, Operator, ParentRel, ScanMethod,
    SortMethod,
};
use crate::plan::{NodeEst, PlanNode};
use crate::spec::{AggSpec, JoinCard, JoinInput, JoinSpec, QuerySpec, TableTerm};
use rand::Rng;

/// PostgreSQL-default cost units (used for `NodeEst::total_cost`).
pub mod cost_units {
    /// Cost of a sequentially-fetched page.
    pub const SEQ_PAGE: f64 = 1.0;
    /// Cost of a randomly-fetched page.
    pub const RANDOM_PAGE: f64 = 4.0;
    /// CPU cost of emitting one tuple.
    pub const CPU_TUPLE: f64 = 0.01;
    /// CPU cost of processing one index entry.
    pub const CPU_INDEX_TUPLE: f64 = 0.005;
    /// CPU cost of evaluating one operator/predicate.
    pub const CPU_OPERATOR: f64 = 0.0025;
}

use cost_units::*;

/// Intermediate state while building a subtree.
struct Built {
    node: PlanNode,
    /// Whether the subtree's output is sorted on its join key (enables
    /// merge joins and sorted aggregation).
    sorted: bool,
}

impl Built {
    fn est_rows(&self) -> f64 {
        self.node.est.rows
    }
    fn true_rows(&self) -> f64 {
        self.node.actual.rows
    }
    fn width(&self) -> f64 {
        self.node.est.width
    }
    fn cost(&self) -> f64 {
        self.node.est.total_cost
    }
}

/// Lowers [`QuerySpec`]s to physical plans against a fixed catalog.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Optimizer { catalog }
    }

    /// Builds the physical plan for `spec`.
    ///
    /// `rng` drives minor physical choices (index scan direction, hash
    /// algorithm variant) — the kinds of things that vary run-to-run in a
    /// real system without changing the plan's cost structure.
    pub fn build(&self, spec: &QuerySpec, rng: &mut impl Rng) -> PlanNode {
        debug_assert!(spec.validate(self.catalog.num_tables()).is_ok());
        let mut built = self.build_input(&spec.join, spec, rng);

        // HAVING-like post filter.
        if let Some((true_sel, est_sel)) = spec.post_filter {
            built = self.add_filter(built, true_sel, est_sel, false);
        }

        // Aggregation.
        if let Some(agg) = &spec.agg {
            built = self.add_aggregate(built, agg);
        }

        // ORDER BY.
        if let Some(sort) = &spec.sort {
            built = self.add_sort(built, sort.key, spec.limit);
        }

        // LIMIT.
        if let Some(limit) = spec.limit {
            built = self.add_limit(built, limit);
        }

        built.node
    }

    // ----- leaf construction -------------------------------------------------

    fn build_term(&self, term: &TableTerm, rng: &mut impl Rng) -> Built {
        let table = term.table;
        let table_rows = self.catalog.rows(table);
        let pages = self.catalog.pages(table);
        let width = self.catalog.table(table).row_width * 0.7;

        let (true_sel, est_sel, pred_col, separate) = match &term.filter {
            Some(f) => (f.true_sel, f.est_sel, Some(f.col), f.separate_node),
            None => (1.0, 1.0, None, false),
        };

        // Pushed-down predicate unless the template marked it non-pushable.
        let (scan_true_sel, scan_est_sel) = if separate { (1.0, 1.0) } else { (true_sel, est_sel) };

        // Access-path selection by estimated cost.
        let seq_cost = pages * SEQ_PAGE + table_rows * CPU_TUPLE;
        let mut method = ScanMethod::Seq;
        let mut scan_cost = seq_cost;
        let mut ios = pages;
        if let (Some(col), false) = (pred_col, separate) {
            if let Some(ix_id) = self.catalog.index_on(table, col) {
                let ix = &self.catalog.indexes[ix_id];
                let matched = (table_rows * scan_est_sel).max(1.0);
                let descent = (table_rows.max(2.0)).log2() * CPU_OPERATOR * 50.0;
                let (ix_ios, ix_cost) = if ix.clustered {
                    let p = (pages * scan_est_sel).max(1.0);
                    (p, descent + p * SEQ_PAGE + matched * CPU_INDEX_TUPLE)
                } else {
                    let p = matched.min(pages);
                    (p, descent + p * RANDOM_PAGE + matched * CPU_INDEX_TUPLE)
                };
                if ix_cost < scan_cost {
                    method = ScanMethod::Index { index: ix_id, forward: rng.gen_bool(0.85) };
                    scan_cost = ix_cost;
                    ios = ix_ios;
                }
            }
        }

        let est_rows = (table_rows * scan_est_sel).max(1.0);
        let true_rows = (table_rows * scan_true_sel).max(1.0);

        let mut node = PlanNode::new(
            Operator::Scan { table, method, predicate_col: if separate { None } else { pred_col } },
            vec![],
        );
        node.est = NodeEst {
            width,
            rows: est_rows,
            buffers: PAGE_SIZE * 32.0,
            ios,
            total_cost: scan_cost,
            selectivity: scan_est_sel,
        };
        node.actual.rows = true_rows;
        // Clustered index scans and full scans of physically-ordered heaps
        // (tables with a clustered index) yield key-ordered output; pushed
        // predicates do not disturb the order.
        let sorted = match method {
            ScanMethod::Index { index, .. } => self.catalog.indexes[index].clustered,
            ScanMethod::Seq => self
                .catalog
                .indexes_on(table)
                .any(|(_, ix)| ix.clustered),
        };

        let mut built = Built { node, sorted };
        if separate {
            built = self.add_filter(built, true_sel, est_sel, true);
        }
        built
    }

    // ----- unary node insertion ---------------------------------------------

    fn add_filter(&self, child: Built, true_sel: f64, est_sel: f64, parallel_ok: bool) -> Built {
        let est_rows = (child.est_rows() * est_sel).max(1.0);
        let true_rows = (child.true_rows() * true_sel).max(1.0);
        let width = child.width();
        let cost = child.cost() + child.est_rows() * CPU_OPERATOR * 2.0;
        let sorted = child.sorted;
        let mut node = PlanNode::new(
            Operator::Filter { parallel: parallel_ok && child.est_rows() > 100_000.0 },
            vec![child.node],
        );
        node.est = NodeEst {
            width,
            rows: est_rows,
            buffers: PAGE_SIZE,
            ios: 0.0,
            total_cost: cost,
            selectivity: est_sel,
        };
        node.actual.rows = true_rows;
        Built { node, sorted }
    }

    fn add_aggregate(&self, child: Built, agg: &AggSpec) -> Built {
        let in_est = child.est_rows();
        let width = 32.0;
        let strategy = if agg.groups <= 1.0 {
            AggStrategy::Plain
        } else if child.sorted {
            AggStrategy::Sorted
        } else if agg.est_groups * width <= self.catalog.work_mem_bytes {
            AggStrategy::Hashed
        } else {
            AggStrategy::Sorted
        };

        // A sorted aggregate over unsorted input needs a sort beneath it.
        let child = if strategy == AggStrategy::Sorted && !child.sorted {
            self.add_sort(child, 0, None)
        } else {
            child
        };

        let est_rows = agg.est_groups.max(1.0);
        let true_rows = agg.groups.max(1.0);
        let cost = child.cost()
            + in_est * CPU_OPERATOR
            + match strategy {
                AggStrategy::Plain => 0.0,
                AggStrategy::Sorted => in_est * CPU_OPERATOR,
                AggStrategy::Hashed => in_est * CPU_OPERATOR * 2.0 + est_rows * CPU_TUPLE,
            };
        let buffers = match strategy {
            AggStrategy::Hashed => (est_rows * width * 1.5).max(PAGE_SIZE),
            _ => PAGE_SIZE,
        };
        let spill = strategy == AggStrategy::Hashed && buffers > self.catalog.work_mem_bytes;
        let ios = if spill { 2.0 * in_est * width / PAGE_SIZE } else { 0.0 };
        let sorted = strategy == AggStrategy::Sorted;
        let mut node = PlanNode::new(
            Operator::Aggregate { strategy, partial: in_est > 1_000_000.0, op: agg.op },
            vec![child.node],
        );
        node.est = NodeEst { width, rows: est_rows, buffers, ios, total_cost: cost, selectivity: 1.0 };
        node.actual.rows = true_rows;
        Built { node, sorted }
    }

    fn add_sort(&self, child: Built, key: usize, limit: Option<f64>) -> Built {
        let n_est = child.est_rows();
        let width = child.width();
        let bytes_est = n_est * width;
        let method = if let Some(l) = limit {
            if l < n_est {
                SortMethod::TopN
            } else if bytes_est > self.catalog.work_mem_bytes {
                SortMethod::External
            } else {
                SortMethod::Quicksort
            }
        } else if bytes_est > self.catalog.work_mem_bytes {
            SortMethod::External
        } else {
            SortMethod::Quicksort
        };
        let log_n = n_est.max(2.0).log2();
        let cost = child.cost()
            + match method {
                SortMethod::TopN => n_est * limit.unwrap_or(2.0).max(2.0).log2() * CPU_OPERATOR,
                SortMethod::Quicksort => n_est * log_n * CPU_OPERATOR,
                SortMethod::External => {
                    n_est * log_n * CPU_OPERATOR + 2.0 * bytes_est / PAGE_SIZE * SEQ_PAGE
                }
            };
        let buffers = bytes_est.min(self.catalog.work_mem_bytes).max(PAGE_SIZE);
        let ios = if method == SortMethod::External { 2.0 * bytes_est / PAGE_SIZE } else { 0.0 };
        let true_rows = child.true_rows();
        let est_rows = n_est;
        let mut node = PlanNode::new(Operator::Sort { key, method }, vec![child.node]);
        node.est = NodeEst { width, rows: est_rows, buffers, ios, total_cost: cost, selectivity: 1.0 };
        node.actual.rows = true_rows;
        Built { node, sorted: true }
    }

    fn add_limit(&self, child: Built, count: f64) -> Built {
        let est_rows = child.est_rows().min(count).max(1.0);
        let true_rows = child.true_rows().min(count).max(1.0);
        let width = child.width();
        let cost = child.cost() + est_rows * CPU_TUPLE * 0.1;
        let sorted = child.sorted;
        let mut node = PlanNode::new(Operator::Limit { count }, vec![child.node]);
        node.est = NodeEst {
            width,
            rows: est_rows,
            buffers: PAGE_SIZE,
            ios: 0.0,
            total_cost: cost,
            selectivity: 1.0,
        };
        node.actual.rows = true_rows;
        Built { node, sorted }
    }

    fn add_materialize(&self, child: Built) -> Built {
        let est_rows = child.est_rows();
        let true_rows = child.true_rows();
        let width = child.width();
        let bytes = est_rows * width;
        let cost = child.cost() + est_rows * CPU_OPERATOR;
        let sorted = child.sorted;
        let mut node = PlanNode::new(Operator::Materialize, vec![child.node]);
        node.est = NodeEst {
            width,
            rows: est_rows,
            buffers: bytes.min(self.catalog.work_mem_bytes).max(PAGE_SIZE),
            ios: if bytes > self.catalog.work_mem_bytes { 2.0 * bytes / PAGE_SIZE } else { 0.0 },
            total_cost: cost,
            selectivity: 1.0,
        };
        node.actual.rows = true_rows;
        Built { node, sorted }
    }

    // ----- joins --------------------------------------------------------------

    fn build_input(&self, input: &JoinInput, spec: &QuerySpec, rng: &mut impl Rng) -> Built {
        match input {
            JoinInput::Term(i) => self.build_term(&spec.terms[*i], rng),
            JoinInput::Join(j) => self.build_join(j, spec, rng),
            JoinInput::Derived(q) => {
                let node = self.build(q, rng);
                let sorted = matches!(node.op, Operator::Sort { .. });
                let mut b = Built { node, sorted };
                // Derived inputs are subquery children of their parent join.
                if let Operator::Join { parent_rel, .. } = &mut b.node.op {
                    *parent_rel = ParentRel::Subquery;
                }
                b
            }
        }
    }

    /// Output cardinalities `(true, estimated)` for a join.
    fn join_cardinality(&self, j: &JoinSpec, l: &Built, r: &Built) -> (f64, f64) {
        let (lt, le) = (l.true_rows(), l.est_rows());
        let (rt, re) = (r.true_rows(), r.est_rows());
        match (&j.card, j.jtype) {
            (JoinCard::MatchFraction { true_frac, est_frac }, JoinType::Anti) => {
                ((lt * (1.0 - true_frac)).max(1.0), (le * (1.0 - est_frac)).max(1.0))
            }
            (JoinCard::MatchFraction { true_frac, est_frac }, _) => {
                ((lt * true_frac).max(1.0), (le * est_frac).max(1.0))
            }
            (JoinCard::ForeignKey { pk_table, skew }, jt) => {
                let domain = self.catalog.rows(*pk_table).max(1.0);
                let (t, e) = ((lt * rt / domain * skew).max(1.0), (le * re / domain).max(1.0));
                match jt {
                    JoinType::Semi => (t.min(lt), e.min(le)),
                    JoinType::Anti => ((lt - t.min(lt)).max(1.0), (le - e.min(le)).max(1.0)),
                    JoinType::Full => (t + 0.05 * (lt + rt), e + 0.05 * (le + re)),
                    JoinType::Inner => (t, e),
                }
            }
            (JoinCard::Domain { rows, skew }, jt) => {
                let domain = rows.max(1.0);
                let (t, e) = ((lt * rt / domain * skew).max(1.0), (le * re / domain).max(1.0));
                match jt {
                    JoinType::Semi => (t.min(lt), e.min(le)),
                    JoinType::Anti => ((lt - t.min(lt)).max(1.0), (le - e.min(le)).max(1.0)),
                    JoinType::Full => (t + 0.05 * (lt + rt), e + 0.05 * (le + re)),
                    JoinType::Inner => (t, e),
                }
            }
        }
    }

    fn build_join(&self, j: &JoinSpec, spec: &QuerySpec, rng: &mut impl Rng) -> Built {
        let mut left = self.build_input(&j.left, spec, rng);
        let mut right = self.build_input(&j.right, spec, rng);
        let (true_rows, est_rows) = self.join_cardinality(j, &left, &right);

        // Cost each algorithm on estimates.
        let (le, re) = (left.est_rows(), right.est_rows());
        let nl_cost = left.cost() + right.cost() + le * re * CPU_OPERATOR;
        let build_bytes = re * right.width();
        let spill = build_bytes > self.catalog.work_mem_bytes;
        // Hash joins pay a fixed setup cost (hash-table allocation), which
        // is what makes nested loops win on tiny inputs.
        const HASH_SETUP: f64 = 15.0;
        let hash_cost = left.cost()
            + right.cost()
            + HASH_SETUP
            + re * CPU_OPERATOR * 3.0
            + le * CPU_OPERATOR * 1.5
            + if spill {
                2.0 * (build_bytes + le * left.width()) / PAGE_SIZE * SEQ_PAGE
            } else {
                0.0
            };
        // Merge joins need both inputs ordered; per-tuple cost is higher
        // than a hash probe (two advancing cursors + comparisons), so they
        // win only when both inputs are large and pre-sorted.
        let merge_cost = if left.sorted && right.sorted {
            left.cost() + right.cost() + (le + re) * CPU_OPERATOR * 2.0
        } else {
            f64::INFINITY
        };

        let algo = if merge_cost <= hash_cost && merge_cost <= nl_cost {
            JoinAlgorithm::Merge
        } else if nl_cost < hash_cost {
            JoinAlgorithm::NestedLoop
        } else {
            JoinAlgorithm::Hash
        };

        // Tag child joins with their relationship to this join.
        if let Operator::Join { parent_rel, .. } = &mut left.node.op {
            if *parent_rel == ParentRel::None {
                *parent_rel = ParentRel::Outer;
            }
        }
        if let Operator::Join { parent_rel, .. } = &mut right.node.op {
            if *parent_rel == ParentRel::None {
                *parent_rel = ParentRel::Inner;
            }
        }

        let width = (left.width() + right.width()).min(512.0);
        let left_width = left.width();
        let (children, total_cost, ios, buffers) = match algo {
            JoinAlgorithm::Hash => {
                // Wrap the build (inner) side in a Hash node.
                let buckets = (re.max(1.0).log2().ceil()).exp2().max(1024.0);
                let hash_ios = if spill { 2.0 * build_bytes / PAGE_SIZE } else { 0.0 };
                let mut hash_node = PlanNode::new(
                    Operator::Hash {
                        buckets,
                        algo: if rng.gen_bool(0.8) {
                            HashAlgorithm::Linear
                        } else {
                            HashAlgorithm::Chained
                        },
                    },
                    vec![],
                );
                hash_node.est = NodeEst {
                    width: right.width(),
                    rows: re,
                    buffers: build_bytes.min(self.catalog.work_mem_bytes * 4.0).max(PAGE_SIZE),
                    ios: hash_ios,
                    total_cost: right.cost() + re * CPU_OPERATOR * 3.0,
                    selectivity: 1.0,
                };
                hash_node.actual.rows = right.true_rows();
                hash_node.children = vec![right.node];
                (vec![left.node, hash_node], hash_cost, if spill { 2.0 * le * left_width / PAGE_SIZE } else { 0.0 }, PAGE_SIZE * 16.0)
            }
            JoinAlgorithm::NestedLoop => {
                // Materialize the inner side when rescans would otherwise
                // be expensive: any non-leaf inner, or a leaf inner that
                // will be rescanned many times (large outer).
                let inner = if right.node.children.is_empty() && le <= 10_000.0 {
                    right
                } else {
                    self.add_materialize(right)
                };
                (vec![left.node, inner.node], nl_cost, 0.0, PAGE_SIZE * 4.0)
            }
            JoinAlgorithm::Merge => {
                (vec![left.node, right.node], merge_cost, 0.0, PAGE_SIZE * 8.0)
            }
        };

        let mut node = PlanNode::new(
            Operator::Join { algo, jtype: j.jtype, parent_rel: ParentRel::None },
            children,
        );
        node.est = NodeEst {
            width,
            rows: est_rows,
            buffers,
            ios,
            total_cost: total_cost + est_rows * CPU_TUPLE * 0.5,
            selectivity: 1.0,
        };
        node.actual.rows = true_rows;
        // Merge joins preserve order; hash/NL joins follow the outer side.
        let sorted = matches!(algo, JoinAlgorithm::Merge);
        Built { node, sorted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::operators::{AggOp, OpKind};
    use crate::spec::{FilterSpec, SortSpec};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    fn lineitem_filter(cat: &Catalog, sel: f64) -> TableTerm {
        TableTerm {
            table: cat.table_id("lineitem"),
            filter: Some(FilterSpec { col: 3, true_sel: sel, est_sel: sel, separate_node: false }),
        }
    }

    #[test]
    fn single_table_scan_plan() {
        let cat = Catalog::tpch(1.0);
        let spec = QuerySpec::single(TableTerm { table: cat.table_id("orders"), filter: None });
        let plan = Optimizer::new(&cat).build(&spec, &mut rng());
        assert_eq!(plan.op.kind(), OpKind::Scan);
        assert!((plan.est.rows - cat.rows(cat.table_id("orders"))).abs() < 1.0);
        assert!(plan.est.total_cost > 0.0);
    }

    #[test]
    fn selective_predicate_with_index_uses_index_scan() {
        let cat = Catalog::tpch(1.0);
        let spec = QuerySpec::single(lineitem_filter(&cat, 0.001));
        let plan = Optimizer::new(&cat).build(&spec, &mut rng());
        match plan.op {
            Operator::Scan { method: ScanMethod::Index { .. }, .. } => {}
            ref other => panic!("expected index scan, got {other:?}"),
        }
        assert!(plan.est.rows < 10_000.0);
    }

    #[test]
    fn unselective_predicate_stays_sequential() {
        let cat = Catalog::tpch(1.0);
        let spec = QuerySpec::single(lineitem_filter(&cat, 0.7));
        let plan = Optimizer::new(&cat).build(&spec, &mut rng());
        assert!(matches!(plan.op, Operator::Scan { method: ScanMethod::Seq, .. }));
    }

    fn fk_join_spec(cat: &Catalog) -> QuerySpec {
        // orders ⋈ lineitem on orderkey.
        QuerySpec {
            terms: vec![
                TableTerm { table: cat.table_id("lineitem"), filter: None },
                TableTerm { table: cat.table_id("orders"), filter: None },
            ],
            join: JoinInput::Join(Box::new(JoinSpec {
                left: JoinInput::Term(0),
                right: JoinInput::Term(1),
                jtype: JoinType::Inner,
                card: JoinCard::ForeignKey { pk_table: cat.table_id("orders"), skew: 1.0 },
            })),
            post_filter: None,
            agg: None,
            sort: None,
            limit: None,
        }
    }

    #[test]
    fn fk_join_cardinality_matches_fact_side() {
        let cat = Catalog::tpch(1.0);
        let plan = Optimizer::new(&cat).build(&fk_join_spec(&cat), &mut rng());
        assert_eq!(plan.op.kind(), OpKind::Join);
        // lineitem ⋈ orders on the orders PK keeps lineitem's cardinality.
        let lineitem_rows = cat.rows(cat.table_id("lineitem"));
        assert!((plan.est.rows - lineitem_rows).abs() / lineitem_rows < 0.01);
    }

    #[test]
    fn merge_join_chosen_for_large_presorted_inputs() {
        // lineitem ⋈ orders: both heaps are clustered on the join key and a
        // hash build of orders would spill past work_mem — merge wins.
        let cat = Catalog::tpch(1.0);
        let plan = Optimizer::new(&cat).build(&fk_join_spec(&cat), &mut rng());
        assert!(
            matches!(plan.op, Operator::Join { algo: JoinAlgorithm::Merge, .. }),
            "got {:?}",
            plan.op
        );
    }

    #[test]
    fn hash_join_grows_a_hash_build_node() {
        // customer ⋈ orders-filtered-by-date: the unclustered orderdate
        // index scan destroys sortedness, so the join must hash.
        let cat = Catalog::tpch(1.0);
        let spec = QuerySpec {
            terms: vec![
                TableTerm { table: cat.table_id("customer"), filter: None },
                TableTerm {
                    table: cat.table_id("orders"),
                    filter: Some(FilterSpec {
                        col: 2,
                        true_sel: 0.03,
                        est_sel: 0.03,
                        separate_node: false,
                    }),
                },
            ],
            join: JoinInput::Join(Box::new(JoinSpec {
                left: JoinInput::Term(0),
                right: JoinInput::Term(1),
                jtype: JoinType::Inner,
                card: JoinCard::ForeignKey { pk_table: cat.table_id("customer"), skew: 1.0 },
            })),
            post_filter: None,
            agg: None,
            sort: None,
            limit: None,
        };
        let plan = Optimizer::new(&cat).build(&spec, &mut rng());
        if let Operator::Join { algo: JoinAlgorithm::Hash, .. } = plan.op {
            assert_eq!(plan.children.len(), 2);
            assert_eq!(plan.children[1].op.kind(), OpKind::Hash);
            assert_eq!(plan.children[1].children.len(), 1);
        } else {
            panic!("expected a hash join, got {:?}", plan.op);
        }
    }

    #[test]
    fn tiny_inner_side_selects_nested_loop() {
        let cat = Catalog::tpch(1.0);
        let spec = QuerySpec {
            terms: vec![
                TableTerm { table: cat.table_id("nation"), filter: None },
                TableTerm { table: cat.table_id("region"), filter: None },
            ],
            join: JoinInput::Join(Box::new(JoinSpec {
                left: JoinInput::Term(0),
                right: JoinInput::Term(1),
                jtype: JoinType::Inner,
                card: JoinCard::ForeignKey { pk_table: cat.table_id("region"), skew: 1.0 },
            })),
            post_filter: None,
            agg: None,
            sort: None,
            limit: None,
        };
        let plan = Optimizer::new(&cat).build(&spec, &mut rng());
        assert!(
            matches!(plan.op, Operator::Join { algo: JoinAlgorithm::NestedLoop, .. }),
            "got {:?}",
            plan.op
        );
    }

    #[test]
    fn aggregate_sort_limit_stack() {
        let cat = Catalog::tpch(1.0);
        let mut spec = fk_join_spec(&cat);
        spec.agg = Some(AggSpec { op: AggOp::Sum, groups: 500.0, est_groups: 450.0, partial: false });
        spec.sort = Some(SortSpec { key: 1 });
        spec.limit = Some(20.0);
        let plan = Optimizer::new(&cat).build(&spec, &mut rng());
        assert_eq!(plan.op.kind(), OpKind::Limit);
        assert_eq!(plan.children[0].op.kind(), OpKind::Sort);
        assert_eq!(plan.children[0].children[0].op.kind(), OpKind::Aggregate);
        // Top-N sort because of the limit.
        assert!(matches!(plan.children[0].op, Operator::Sort { method: SortMethod::TopN, .. }));
        assert!((plan.actual.rows - 20.0).abs() < 1e-9);
    }

    #[test]
    fn estimation_error_compounds_through_joins() {
        let cat = Catalog::tpch(1.0);
        // True selectivity 0.10 but the optimizer believes 0.02: the join
        // output estimate inherits the 5x error.
        let spec = QuerySpec {
            terms: vec![
                TableTerm {
                    table: cat.table_id("lineitem"),
                    filter: Some(FilterSpec { col: 3, true_sel: 0.10, est_sel: 0.02, separate_node: false }),
                },
                TableTerm { table: cat.table_id("orders"), filter: None },
            ],
            join: JoinInput::Join(Box::new(JoinSpec {
                left: JoinInput::Term(0),
                right: JoinInput::Term(1),
                jtype: JoinType::Inner,
                card: JoinCard::ForeignKey { pk_table: cat.table_id("orders"), skew: 1.0 },
            })),
            post_filter: None,
            agg: None,
            sort: None,
            limit: None,
        };
        let plan = Optimizer::new(&cat).build(&spec, &mut rng());
        let ratio = plan.actual.rows / plan.est.rows;
        assert!(ratio > 4.0 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn semi_join_caps_output_at_outer_side() {
        let cat = Catalog::tpch(1.0);
        let spec = QuerySpec {
            terms: vec![
                TableTerm { table: cat.table_id("orders"), filter: None },
                TableTerm { table: cat.table_id("lineitem"), filter: None },
            ],
            join: JoinInput::Join(Box::new(JoinSpec {
                left: JoinInput::Term(0),
                right: JoinInput::Term(1),
                jtype: JoinType::Semi,
                card: JoinCard::MatchFraction { true_frac: 0.6, est_frac: 0.5 },
            })),
            post_filter: None,
            agg: None,
            sort: None,
            limit: None,
        };
        let plan = Optimizer::new(&cat).build(&spec, &mut rng());
        let orders = cat.rows(cat.table_id("orders"));
        assert!(plan.actual.rows <= orders);
        assert!((plan.actual.rows - orders * 0.6).abs() / orders < 0.01);
    }
}
