//! Operator featurization (the paper's Table 2, Appendix B).
//!
//! Every operator family gets a fixed-size feature vector built from what
//! PostgreSQL's `EXPLAIN` exposes *before execution*:
//!
//! * **all operators** — plan width, plan rows, plan buffers, estimated
//!   I/Os, total cost (numeric);
//! * **joins** — physical algorithm, join type (semi/inner/anti/full) and
//!   parent relationship (one-hot);
//! * **hash** — bucket count (numeric) and hash algorithm (one-hot);
//! * **sort** — sort key and sort method (one-hot);
//! * **scans** — relation name (one-hot), attribute min/median/max vectors
//!   (numeric), index name (one-hot) and scan direction (boolean);
//! * **aggregates** — strategy (one-hot), partial mode (boolean) and
//!   aggregate operator (one-hot);
//! * **filters** — selectivity estimate (numeric), parallelism flag.
//!
//! Numeric features are passed through a signed `log1p` (they span many
//! orders of magnitude; see DESIGN.md §5) and then *whitened* — scaled to
//! zero mean / unit variance using statistics of the **training set only**
//! ([`Whitener`]), exactly as the paper prescribes. Booleans are 0/1 and
//! categoricals are one-hot, unwhitened.
//!
//! Featurization never reads `NodeActual`: a test asserts that plans
//! differing only in their actuals featurize identically.

use crate::catalog::Catalog;
use crate::operators::{
    AggOp, AggStrategy, HashAlgorithm, JoinAlgorithm, JoinType, OpKind, Operator, ParentRel,
    ScanMethod, SortMethod,
};
use crate::plan::{Plan, PlanNode};
use crate::spec::MAX_SORT_KEYS;
use serde::{Deserialize, Serialize};

/// Number of leading table columns whose min/median/max statistics are
/// exposed to scan features ("Attribute Mins/Medians/Maxs").
pub const ATTR_STATS_COLS: usize = 4;

/// Signed `log1p`: order-preserving compression that tolerates negatives.
#[inline]
pub fn signed_log1p(x: f64) -> f32 {
    (x.signum() * x.abs().ln_1p()) as f32
}

/// Builds raw (pre-whitening) feature vectors for plan nodes.
///
/// The featurizer is catalog-specific: one-hot widths depend on the number
/// of tables and indexes, and scan features embed per-table column
/// statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Featurizer {
    num_tables: usize,
    num_indexes: usize,
    /// Append a learned-cardinality feature to every operator (paper §7
    /// integration; see [`crate::cardest`]).
    #[serde(default)]
    learned_cardinalities: bool,
    /// Append the multiprogramming level ([`PlanNode::concurrency`]) to
    /// every operator (paper §8 concurrent-query extension).
    #[serde(default)]
    system_load: bool,
    /// Per-table `[mins, medians, maxs]` stats, signed-log'd, padded to
    /// `ATTR_STATS_COLS` columns.
    table_stats: Vec<[f32; 3 * ATTR_STATS_COLS]>,
    /// Per-kind feature-vector sizes.
    sizes: [usize; OpKind::ALL.len()],
    /// Per-kind mask of positions that are numeric (whitened).
    numeric_masks: Vec<Vec<bool>>,
}

impl Featurizer {
    /// Creates a featurizer for `catalog`.
    pub fn new(catalog: &Catalog) -> Featurizer {
        let num_tables = catalog.num_tables();
        let num_indexes = catalog.num_indexes();
        let table_stats = catalog
            .tables
            .iter()
            .map(|t| {
                let mut s = [0.0f32; 3 * ATTR_STATS_COLS];
                for (i, col) in t.columns.iter().take(ATTR_STATS_COLS).enumerate() {
                    s[i] = signed_log1p(col.min);
                    s[ATTR_STATS_COLS + i] = signed_log1p(col.median);
                    s[2 * ATTR_STATS_COLS + i] = signed_log1p(col.max);
                }
                s
            })
            .collect();

        let mut f = Featurizer {
            num_tables,
            num_indexes,
            learned_cardinalities: false,
            system_load: false,
            table_stats,
            sizes: [0; OpKind::ALL.len()],
            numeric_masks: Vec::new(),
        };
        let mut masks = Vec::with_capacity(OpKind::ALL.len());
        for kind in OpKind::ALL {
            let mask = f.build_mask(kind);
            f.sizes[kind.index()] = mask.len();
            masks.push(mask);
        }
        f.numeric_masks = masks;
        f
    }

    /// A featurizer that additionally exposes learned-estimator
    /// cardinalities ([`crate::plan::PlanNode::learned_rows`]) as one extra
    /// numeric feature per operator — the paper's §7 integration. Nodes
    /// without an attached estimate fall back to the optimizer's rows.
    pub fn with_learned_cardinalities(catalog: &Catalog) -> Featurizer {
        let mut f = Featurizer::new(catalog);
        f.learned_cardinalities = true;
        // Rebuild sizes/masks with the extra trailing numeric position.
        for kind in OpKind::ALL {
            f.sizes[kind.index()] += 1;
            f.numeric_masks[kind.index()].push(true);
        }
        f
    }

    /// A featurizer that additionally exposes the multiprogramming level
    /// in effect when the plan runs ([`PlanNode::concurrency`]) as one
    /// extra numeric feature per operator — the paper's §8 concurrent-query
    /// extension. An admission controller knows the current load before
    /// execution, so this is a legitimate ahead-of-time feature.
    pub fn with_system_load(catalog: &Catalog) -> Featurizer {
        let mut f = Featurizer::new(catalog);
        f.system_load = true;
        for kind in OpKind::ALL {
            f.sizes[kind.index()] += 1;
            f.numeric_masks[kind.index()].push(true);
        }
        f
    }

    /// Deterministic digest of everything that shapes this featurizer's
    /// output: catalog statistics, one-hot widths and the extension flags.
    /// Two featurizers with equal digests produce identical feature
    /// vectors for any node; consumers that bake features (e.g. the
    /// serving compiler's program fingerprint) use this to detect
    /// catalog/featurizer mismatches.
    pub fn digest(&self) -> u64 {
        let mut h = crate::util::Fnv1a::new();
        h.mix(self.num_tables as u64);
        h.mix(self.num_indexes as u64);
        h.mix(self.learned_cardinalities as u64);
        h.mix(self.system_load as u64);
        for stats in &self.table_stats {
            for &v in stats {
                h.mix(v.to_bits() as u64);
            }
        }
        for &size in &self.sizes {
            h.mix(size as u64);
        }
        h.finish()
    }

    /// Size of the feature vector for `kind`.
    pub fn feature_size(&self, kind: OpKind) -> usize {
        self.sizes[kind.index()]
    }

    /// Which positions of `kind`'s vector are numeric (whitening targets).
    pub fn numeric_mask(&self, kind: OpKind) -> &[bool] {
        &self.numeric_masks[kind.index()]
    }

    /// Common `EXPLAIN` numerics available for every operator.
    fn push_common(out: &mut Vec<f32>, node: &PlanNode) {
        out.push(signed_log1p(node.est.width));
        out.push(signed_log1p(node.est.rows));
        out.push(signed_log1p(node.est.buffers));
        out.push(signed_log1p(node.est.ios));
        out.push(signed_log1p(node.est.total_cost));
    }

    fn push_onehot(out: &mut Vec<f32>, hot: usize, len: usize) {
        debug_assert!(hot < len);
        for i in 0..len {
            out.push(if i == hot { 1.0 } else { 0.0 });
        }
    }

    /// Featurizes one plan node (raw, pre-whitening).
    ///
    /// Reads only the operator, its estimates and catalog statistics —
    /// never `NodeActual`.
    pub fn featurize(&self, node: &PlanNode) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.feature_size(node.op.kind()));
        self.featurize_into(node, &mut out);
        out
    }

    /// Like [`Featurizer::featurize`], appending into a caller-provided
    /// buffer (cleared first) so batch featurization can reuse one
    /// allocation across nodes — the serving compiler
    /// (`qppnet::infer::PlanProgram`) featurizes thousands of nodes per
    /// batch on its hot path.
    pub fn featurize_into(&self, node: &PlanNode, out: &mut Vec<f32>) {
        out.clear();
        let kind = node.op.kind();
        Self::push_common(out, node);
        match &node.op {
            Operator::Scan { table, method, predicate_col: _ } => {
                // Scan method one-hot: [seq, index].
                let is_index = matches!(method, ScanMethod::Index { .. });
                Self::push_onehot(out, is_index as usize, 2);
                // Relation name one-hot.
                Self::push_onehot(out, *table, self.num_tables);
                // Attribute min/median/max stats.
                out.extend_from_slice(&self.table_stats[*table]);
                // Index name one-hot (+1 slot for "no index") and direction.
                let (ix_hot, forward) = match method {
                    ScanMethod::Index { index, forward } => (*index + 1, *forward),
                    ScanMethod::Seq => (0, true),
                };
                Self::push_onehot(out, ix_hot, self.num_indexes + 1);
                out.push(forward as u8 as f32);
            }
            Operator::Filter { parallel } => {
                out.push(node.est.selectivity as f32);
                out.push(*parallel as u8 as f32);
            }
            Operator::Join { algo, jtype, parent_rel } => {
                let a = match algo {
                    JoinAlgorithm::NestedLoop => 0,
                    JoinAlgorithm::Hash => 1,
                    JoinAlgorithm::Merge => 2,
                };
                Self::push_onehot(out, a, 3);
                let t = match jtype {
                    JoinType::Semi => 0,
                    JoinType::Inner => 1,
                    JoinType::Anti => 2,
                    JoinType::Full => 3,
                };
                Self::push_onehot(out, t, 4);
                let p = match parent_rel {
                    ParentRel::None => 0,
                    ParentRel::Inner => 1,
                    ParentRel::Outer => 2,
                    ParentRel::Subquery => 3,
                };
                Self::push_onehot(out, p, 4);
            }
            Operator::Hash { buckets, algo } => {
                out.push(signed_log1p(*buckets));
                Self::push_onehot(out, matches!(algo, HashAlgorithm::Chained) as usize, 2);
            }
            Operator::Sort { key, method } => {
                Self::push_onehot(out, (*key).min(MAX_SORT_KEYS - 1), MAX_SORT_KEYS);
                let m = match method {
                    SortMethod::Quicksort => 0,
                    SortMethod::TopN => 1,
                    SortMethod::External => 2,
                };
                Self::push_onehot(out, m, 3);
            }
            Operator::Aggregate { strategy, partial, op } => {
                let s = match strategy {
                    AggStrategy::Plain => 0,
                    AggStrategy::Sorted => 1,
                    AggStrategy::Hashed => 2,
                };
                Self::push_onehot(out, s, 3);
                out.push(*partial as u8 as f32);
                let o = match op {
                    AggOp::Count => 0,
                    AggOp::Sum => 1,
                    AggOp::Avg => 2,
                    AggOp::Min => 3,
                    AggOp::Max => 4,
                };
                Self::push_onehot(out, o, 5);
            }
            Operator::Materialize => {}
            Operator::Limit { count } => {
                out.push(signed_log1p(*count));
            }
        }
        if self.learned_cardinalities {
            out.push(signed_log1p(node.learned_rows.unwrap_or(node.est.rows)));
        }
        if self.system_load {
            out.push(node.concurrency as f32);
        }
        debug_assert_eq!(out.len(), self.feature_size(kind));
    }

    /// Human-readable labels for every feature position of `kind`, aligned
    /// with [`Featurizer::featurize`]'s layout (used by the Table-2 report
    /// and the permutation-importance analysis).
    pub fn feature_labels(&self, kind: OpKind) -> Vec<String> {
        let mut out: Vec<String> = ["Plan Width", "Plan Rows", "Plan Buffers", "Estimated I/Os", "Total Cost"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match kind {
            OpKind::Scan => {
                out.push("Scan Method = Seq".into());
                out.push("Scan Method = Index".into());
                for t in 0..self.num_tables {
                    out.push(format!("Relation Name = #{t}"));
                }
                for stat in ["Min", "Median", "Max"] {
                    for c in 0..ATTR_STATS_COLS {
                        out.push(format!("Attribute {stat}s[{c}]"));
                    }
                }
                out.push("Index Name = none".into());
                for i in 0..self.num_indexes {
                    out.push(format!("Index Name = #{i}"));
                }
                out.push("Scan Direction".into());
            }
            OpKind::Filter => {
                out.push("Selectivity".into());
                out.push("Parallel".into());
            }
            OpKind::Join => {
                for a in ["NestedLoop", "Hash", "Merge"] {
                    out.push(format!("Join Algorithm = {a}"));
                }
                for t in ["semi", "inner", "anti", "full"] {
                    out.push(format!("Join Type = {t}"));
                }
                for p in ["none", "inner", "outer", "subquery"] {
                    out.push(format!("Parent Relationship = {p}"));
                }
            }
            OpKind::Hash => {
                out.push("Hash Buckets".into());
                out.push("Hash Algorithm = linear".into());
                out.push("Hash Algorithm = chained".into());
            }
            OpKind::Sort => {
                for k in 0..MAX_SORT_KEYS {
                    out.push(format!("Sort Key = {k}"));
                }
                for m in ["quicksort", "top-N heapsort", "external merge"] {
                    out.push(format!("Sort Method = {m}"));
                }
            }
            OpKind::Aggregate => {
                for s in ["plain", "sorted", "hashed"] {
                    out.push(format!("Strategy = {s}"));
                }
                out.push("Partial Mode".into());
                for o in ["count", "sum", "avg", "min", "max"] {
                    out.push(format!("Operator = {o}"));
                }
            }
            OpKind::Materialize => {}
            OpKind::Limit => {
                out.push("Limit Count".into());
            }
        }
        if self.learned_cardinalities {
            out.push("Learned Cardinality".into());
        }
        if self.system_load {
            out.push("System Load (MPL)".into());
        }
        debug_assert_eq!(out.len(), self.feature_size(kind));
        out
    }

    /// Builds the numeric mask (and implicitly the size) for a kind by
    /// mirroring [`Featurizer::featurize`]'s layout.
    fn build_mask(&self, kind: OpKind) -> Vec<bool> {
        let mut m = vec![true; 5]; // common numerics
        match kind {
            OpKind::Scan => {
                m.extend(std::iter::repeat_n(false, 2)); // method one-hot
                m.extend(std::iter::repeat_n(false, self.num_tables));
                m.extend(std::iter::repeat_n(true, 3 * ATTR_STATS_COLS));
                m.extend(std::iter::repeat_n(false, self.num_indexes + 1));
                m.push(false); // direction
            }
            OpKind::Filter => {
                m.push(true); // selectivity
                m.push(false); // parallel flag
            }
            OpKind::Join => {
                m.extend(std::iter::repeat_n(false, 3 + 4 + 4));
            }
            OpKind::Hash => {
                m.push(true); // buckets
                m.extend(std::iter::repeat_n(false, 2));
            }
            OpKind::Sort => {
                m.extend(std::iter::repeat_n(false, MAX_SORT_KEYS + 3));
            }
            OpKind::Aggregate => {
                m.extend(std::iter::repeat_n(false, 3));
                m.push(false); // partial
                m.extend(std::iter::repeat_n(false, 5));
            }
            OpKind::Materialize => {}
            OpKind::Limit => {
                m.push(true); // count
            }
        }
        m
    }
}

/// Per-kind, per-position mean/std statistics for whitening numeric
/// features. Fit on the **training split only** and reused at inference,
/// as the paper prescribes ("At inference time, the same scaling values are
/// used").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Whitener {
    /// `stats[kind][pos] = (mean, std)`; one-hot positions carry `(0, 1)`.
    stats: Vec<Vec<(f32, f32)>>,
}

impl Whitener {
    /// Fits whitening statistics over every operator of `plans`.
    pub fn fit<'a>(
        featurizer: &Featurizer,
        plans: impl IntoIterator<Item = &'a Plan>,
    ) -> Whitener {
        let nkinds = OpKind::ALL.len();
        let mut sums: Vec<Vec<f64>> = (0..nkinds)
            .map(|k| vec![0.0; featurizer.sizes[k]])
            .collect();
        let mut sqs: Vec<Vec<f64>> = sums.clone();
        let mut counts = vec![0usize; nkinds];

        for plan in plans {
            plan.root.visit_postorder(&mut |node| {
                let kind = node.op.kind();
                let k = kind.index();
                let v = featurizer.featurize(node);
                counts[k] += 1;
                for (i, &x) in v.iter().enumerate() {
                    sums[k][i] += x as f64;
                    sqs[k][i] += (x as f64) * (x as f64);
                }
            });
        }

        let stats = (0..nkinds)
            .map(|k| {
                let n = counts[k].max(1) as f64;
                let mask = &featurizer.numeric_masks[k];
                (0..featurizer.sizes[k])
                    .map(|i| {
                        if !mask[i] || counts[k] == 0 {
                            (0.0, 1.0)
                        } else {
                            let mean = sums[k][i] / n;
                            let var = (sqs[k][i] / n - mean * mean).max(0.0);
                            let std = var.sqrt().max(1e-6);
                            (mean as f32, std as f32)
                        }
                    })
                    .collect()
            })
            .collect();
        Whitener { stats }
    }

    /// Deterministic digest of the whitening statistics (see
    /// [`Featurizer::digest`] for the intended use).
    pub fn digest(&self) -> u64 {
        let mut h = crate::util::Fnv1a::new();
        for per_kind in &self.stats {
            h.mix(per_kind.len() as u64);
            for &(mean, std) in per_kind {
                h.mix(mean.to_bits() as u64);
                h.mix(std.to_bits() as u64);
            }
        }
        h.finish()
    }

    /// Identity whitener (for tests and untrained pipelines).
    pub fn identity(featurizer: &Featurizer) -> Whitener {
        Whitener {
            stats: (0..OpKind::ALL.len())
                .map(|k| vec![(0.0, 1.0); featurizer.sizes[k]])
                .collect(),
        }
    }

    /// Whitens a raw feature vector in place.
    pub fn apply(&self, kind: OpKind, v: &mut [f32]) {
        let stats = &self.stats[kind.index()];
        debug_assert_eq!(stats.len(), v.len());
        for (x, &(mean, std)) in v.iter_mut().zip(stats) {
            *x = (*x - mean) / std;
        }
    }

    /// Convenience: featurize + whiten one node.
    pub fn features(&self, featurizer: &Featurizer, node: &PlanNode) -> Vec<f32> {
        let kind = node.op.kind();
        let mut v = featurizer.featurize(node);
        self.apply(kind, &mut v);
        v
    }

    /// Featurize + whiten one node into a reused buffer (see
    /// [`Featurizer::featurize_into`]).
    pub fn features_into(&self, featurizer: &Featurizer, node: &PlanNode, out: &mut Vec<f32>) {
        featurizer.featurize_into(node, out);
        self.apply(node.op.kind(), out);
    }
}

/// A memo of whitened per-node feature rows for cache-aware featurization.
///
/// Table-2 featurization is the single largest fixed cost of compiling a
/// serving program (≈ 36 % of compile on the mixed 320-plan bench stream),
/// and live query streams are highly repetitive — the same templates
/// produce nodes with identical operator parameters and estimates over and
/// over. A `FeatureCache` maps an **exact content key** of a node (the
/// caller supplies it — e.g. `qppnet::lower::NodeContentKey`, which
/// encodes every field `featurize` reads) to its whitened feature row, so
/// featurization runs only for never-before-seen node shapes.
///
/// Exactness matters: because the key captures all feature inputs, a hit
/// returns *bit-identical* values to recomputing — the incremental serving
/// engine's determinism contract depends on this, so the cache never uses
/// lossy hashes as keys. A cache is only meaningful for one
/// (featurizer, whitener) pair; callers must not share one across models.
///
/// Memory is **bounded**: a long-lived streaming server sees estimates
/// that may never repeat exactly (each entry would live forever), so once
/// the memo reaches its entry limit it is cleared and re-warmed — a
/// generational reset, amortized O(1), with no effect on results (a cold
/// lookup recomputes the same bits a hit would have copied).
#[derive(Debug)]
pub struct FeatureCache<K> {
    map: std::collections::HashMap<K, Vec<f32>>,
    max_entries: usize,
    hits: u64,
    misses: u64,
}

impl<K> Default for FeatureCache<K> {
    fn default() -> FeatureCache<K> {
        FeatureCache {
            map: std::collections::HashMap::new(),
            max_entries: Self::DEFAULT_MAX_ENTRIES,
            hits: 0,
            misses: 0,
        }
    }
}

impl<K> FeatureCache<K> {
    /// Default entry limit: at ~50 f32s plus key/bucket overhead per
    /// entry, this bounds a session's memo around tens of megabytes —
    /// far above any template working set, far below an OOM concern.
    pub const DEFAULT_MAX_ENTRIES: usize = 1 << 16;

    /// An empty cache with the default entry limit.
    pub fn new() -> FeatureCache<K> {
        FeatureCache::default()
    }

    /// An empty cache holding at most `max_entries` memoized rows
    /// (clamped to ≥ 1) before a generational reset.
    pub fn with_max_entries(max_entries: usize) -> FeatureCache<K> {
        FeatureCache { max_entries: max_entries.max(1), ..FeatureCache::default() }
    }
}

impl<K: std::hash::Hash + Eq> FeatureCache<K> {
    /// Writes `node`'s whitened features into `out` (cleared first),
    /// computing and memoizing them under `key` on first sight. A hit
    /// copies the memoized row and never touches the featurizer.
    pub fn features_into(
        &mut self,
        featurizer: &Featurizer,
        whitener: &Whitener,
        node: &PlanNode,
        key: K,
        out: &mut Vec<f32>,
    ) {
        out.clear();
        // The steady-state hit path hashes the key exactly once; only a
        // miss (which pays a featurization anyway) hashes again to insert.
        if let Some(row) = self.map.get(&key) {
            self.hits += 1;
            out.extend_from_slice(row);
            return;
        }
        self.misses += 1;
        let row = whitener.features(featurizer, node);
        out.extend_from_slice(&row);
        if self.map.len() >= self.max_entries {
            // Generational reset: bounded memory beats a perfect memo —
            // repeating shapes re-warm within one plan's worth of misses.
            self.map.clear();
        }
        self.map.insert(key, row);
    }

    /// Number of distinct node shapes memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to featurize.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups served from the memo (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Workload};
    use crate::optimizer::Optimizer;
    use crate::spec::{FilterSpec, QuerySpec, TableTerm};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(9)
    }

    fn scan_plan(cat: &Catalog, table: &str, sel: Option<f64>) -> Plan {
        let spec = QuerySpec::single(TableTerm {
            table: cat.table_id(table),
            filter: sel.map(|s| FilterSpec { col: 0, true_sel: s, est_sel: s, separate_node: false }),
        });
        Plan {
            root: Optimizer::new(cat).build(&spec, &mut rng()),
            workload: Workload::TpcH,
            template_id: 0,
            query_id: 0,
        }
    }

    #[test]
    fn feature_sizes_are_consistent_with_vectors() {
        let cat = Catalog::tpch(1.0);
        let f = Featurizer::new(&cat);
        let plan = scan_plan(&cat, "lineitem", None);
        let v = f.featurize(&plan.root);
        assert_eq!(v.len(), f.feature_size(OpKind::Scan));
        assert_eq!(f.numeric_mask(OpKind::Scan).len(), v.len());
    }

    #[test]
    fn scan_features_one_hot_relation() {
        let cat = Catalog::tpch(1.0);
        let f = Featurizer::new(&cat);
        let a = f.featurize(&scan_plan(&cat, "lineitem", None).root);
        let b = f.featurize(&scan_plan(&cat, "orders", None).root);
        // Exactly one relation slot is hot in each, and they differ.
        let rel_range = 5 + 2..5 + 2 + cat.num_tables();
        let hot_a: Vec<usize> =
            rel_range.clone().filter(|&i| a[i] == 1.0).collect();
        let hot_b: Vec<usize> = rel_range.filter(|&i| b[i] == 1.0).collect();
        assert_eq!(hot_a.len(), 1);
        assert_eq!(hot_b.len(), 1);
        assert_ne!(hot_a, hot_b);
    }

    #[test]
    fn features_ignore_actuals() {
        let cat = Catalog::tpch(1.0);
        let f = Featurizer::new(&cat);
        let mut plan = scan_plan(&cat, "lineitem", Some(0.1));
        let before = f.featurize(&plan.root);
        plan.root.actual.latency_ms = 1e9;
        plan.root.actual.rows = 42.0;
        let after = f.featurize(&plan.root);
        assert_eq!(before, after);
    }

    #[test]
    fn whitener_normalizes_numeric_positions() {
        let cat = Catalog::tpch(1.0);
        let f = Featurizer::new(&cat);
        let plans: Vec<Plan> = ["lineitem", "orders", "customer", "part", "supplier"]
            .iter()
            .map(|t| scan_plan(&cat, t, None))
            .collect();
        let w = Whitener::fit(&f, plans.iter());
        // After whitening, the "plan rows" position (index 1) should have
        // near-zero mean across the fitted plans.
        let mut sum = 0.0f32;
        for p in &plans {
            let v = w.features(&f, &p.root);
            sum += v[1];
        }
        assert!((sum / plans.len() as f32).abs() < 1e-3);
    }

    #[test]
    fn whitener_leaves_one_hots_untouched() {
        let cat = Catalog::tpch(1.0);
        let f = Featurizer::new(&cat);
        let plans: Vec<Plan> =
            ["lineitem", "orders"].iter().map(|t| scan_plan(&cat, t, None)).collect();
        let w = Whitener::fit(&f, plans.iter());
        let v = w.features(&f, &plans[0].root);
        let raw = f.featurize(&plans[0].root);
        for (i, numeric) in f.numeric_mask(OpKind::Scan).iter().enumerate() {
            if !numeric {
                assert_eq!(v[i], raw[i], "one-hot position {i} was modified");
            }
        }
    }

    fn node_of_kind(kind: OpKind) -> Plan {
        // Generate plans until one contains `kind`, then prune to it.
        for seed in 0..50u64 {
            let ds = crate::dataset::Dataset::generate(
                crate::catalog::Workload::TpcDs,
                1.0,
                10,
                seed,
            );
            for p in &ds.plans {
                let mut found = None;
                p.root.visit_postorder(&mut |n| {
                    if n.op.kind() == kind && found.is_none() {
                        found = Some(n.clone());
                    }
                });
                if let Some(node) = found {
                    return Plan {
                        root: node,
                        workload: crate::catalog::Workload::TpcDs,
                        template_id: 0,
                        query_id: 0,
                    };
                }
            }
        }
        panic!("no {kind:?} found in 500 plans");
    }

    #[test]
    fn every_kind_featurizes_at_documented_size() {
        let cat = Catalog::tpcds(1.0);
        let f = Featurizer::new(&cat);
        for kind in OpKind::ALL {
            let plan = node_of_kind(kind);
            let v = f.featurize(&plan.root);
            assert_eq!(v.len(), f.feature_size(kind), "{kind:?}");
            assert!(v.iter().all(|x| x.is_finite()), "{kind:?}");
        }
    }

    #[test]
    fn join_features_one_hot_exactly_three_groups() {
        let cat = Catalog::tpcds(1.0);
        let f = Featurizer::new(&cat);
        let plan = node_of_kind(OpKind::Join);
        let v = f.featurize(&plan.root);
        // After the 5 common numerics: algo(3) + type(4) + parent(4),
        // exactly one hot in each group.
        let hot = |range: std::ops::Range<usize>| v[range].iter().filter(|&&x| x == 1.0).count();
        assert_eq!(hot(5..8), 1, "join algorithm one-hot");
        assert_eq!(hot(8..12), 1, "join type one-hot");
        assert_eq!(hot(12..16), 1, "parent relationship one-hot");
    }

    #[test]
    fn learned_cardinality_featurizer_adds_one_numeric() {
        let cat = Catalog::tpcds(1.0);
        let plain = Featurizer::new(&cat);
        let learned = Featurizer::with_learned_cardinalities(&cat);
        for kind in OpKind::ALL {
            assert_eq!(learned.feature_size(kind), plain.feature_size(kind) + 1);
            assert_eq!(learned.numeric_mask(kind).last(), Some(&true));
        }
        // Without an attached estimate, the extra feature falls back to
        // the optimizer's row estimate.
        let plan = node_of_kind(OpKind::Scan);
        let v = learned.featurize(&plan.root);
        assert_eq!(*v.last().unwrap(), signed_log1p(plan.root.est.rows));
    }

    #[test]
    fn system_load_featurizer_adds_one_numeric() {
        let cat = Catalog::tpch(1.0);
        let plain = Featurizer::new(&cat);
        let loaded = Featurizer::with_system_load(&cat);
        for kind in OpKind::ALL {
            assert_eq!(loaded.feature_size(kind), plain.feature_size(kind) + 1);
            assert_eq!(loaded.numeric_mask(kind).last(), Some(&true));
        }
        let mut plan = scan_plan(&cat, "lineitem", None);
        plan.root.concurrency = 7.0;
        let v = loaded.featurize(&plan.root);
        assert_eq!(*v.last().unwrap(), 7.0);
        // The plain featurizer ignores the load entirely.
        let mut isolated = scan_plan(&cat, "lineitem", None);
        isolated.root.concurrency = 1.0;
        assert_eq!(plain.featurize(&plan.root), plain.featurize(&isolated.root));
    }

    #[test]
    fn feature_labels_align_with_feature_sizes() {
        for cat in [Catalog::tpch(1.0), Catalog::tpcds(1.0)] {
            for f in [
                Featurizer::new(&cat),
                Featurizer::with_learned_cardinalities(&cat),
                Featurizer::with_system_load(&cat),
            ] {
                for kind in OpKind::ALL {
                    let labels = f.feature_labels(kind);
                    assert_eq!(labels.len(), f.feature_size(kind), "{kind:?}");
                    // Labels are unique within a kind.
                    let set: std::collections::HashSet<&String> = labels.iter().collect();
                    assert_eq!(set.len(), labels.len(), "{kind:?} labels not unique");
                }
            }
        }
    }

    #[test]
    fn feature_cache_hits_return_identical_rows() {
        let cat = Catalog::tpch(1.0);
        let f = Featurizer::new(&cat);
        let plans: Vec<Plan> =
            ["lineitem", "orders"].iter().map(|t| scan_plan(&cat, t, None)).collect();
        let w = Whitener::fit(&f, plans.iter());
        let mut cache: FeatureCache<u32> = FeatureCache::new();
        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        cache.features_into(&f, &w, &plans[0].root, 0, &mut a);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.features_into(&f, &w, &plans[0].root, 0, &mut b);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "cache hit must be bit-identical to the computed row"
        );
        assert_eq!(b, w.features(&f, &plans[0].root));
        cache.features_into(&f, &w, &plans[1].root, 1, &mut c);
        assert_eq!(cache.len(), 2);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn feature_cache_memory_is_bounded() {
        let cat = Catalog::tpch(1.0);
        let f = Featurizer::new(&cat);
        let plan = scan_plan(&cat, "lineitem", None);
        let w = Whitener::fit(&f, std::iter::once(&plan));
        let mut cache: FeatureCache<u64> = FeatureCache::with_max_entries(4);
        let mut out = Vec::new();
        for key in 0..100u64 {
            cache.features_into(&f, &w, &plan.root, key, &mut out);
            assert!(cache.len() <= 4, "cache exceeded its bound at key {key}");
            assert_eq!(out, w.features(&f, &plan.root), "reset must not change values");
        }
        assert_eq!(cache.misses(), 100, "distinct keys all miss");
        // A repeating key still hits within a generation.
        cache.features_into(&f, &w, &plan.root, 99, &mut out);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn signed_log1p_handles_negatives() {
        assert!(signed_log1p(-100.0) < 0.0);
        assert_eq!(signed_log1p(0.0), 0.0);
        assert!((signed_log1p(1.0) - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn tpcds_featurizer_builds_all_masks() {
        let cat = Catalog::tpcds(1.0);
        let f = Featurizer::new(&cat);
        for kind in OpKind::ALL {
            assert!(f.feature_size(kind) >= 5, "{kind:?}");
            assert_eq!(f.numeric_mask(kind).len(), f.feature_size(kind));
        }
    }
}
