//! Simulated *learned cardinality estimators* (paper §7 integration).
//!
//! The paper's related-work section observes that learned cardinality
//! estimation (Kipf et al. \[17\], Liu et al. \[27\]) "could be easily
//! integrated into our deep neural network by inserting the cardinality
//! estimate of each operator into its neural unit's input vector", letting
//! the network "learn the relationship between these estimates and the
//! latency of the entire query execution plan".
//!
//! This module simulates such an estimator at a configurable quality: a
//! lognormal perturbation of the true cardinality with width `sigma`
//! (σ = 0 is a perfect oracle; σ ≈ 0.3 matches published learned-estimator
//! accuracy; larger σ degrades toward uselessness). The estimates are
//! attached to [`PlanNode::learned_rows`], surfaced to models through
//! [`crate::features::Featurizer::with_learned_cardinalities`], and
//! evaluated by the `card_est` bench binary.

use crate::plan::PlanNode;
use crate::util::lognormal;
use rand::Rng;

/// Attaches simulated learned-estimator cardinalities to every node of a
/// plan: `learned_rows = true_rows · exp(N(0, sigma))`.
pub fn inject_learned_cardinalities(root: &mut PlanNode, sigma: f64, rng: &mut impl Rng) {
    root.visit_postorder_mut(&mut |node| {
        node.learned_rows = Some((node.actual.rows * lognormal(rng, sigma)).max(1.0));
    });
}

/// Removes attached learned cardinalities (back to optimizer-only
/// estimates).
pub fn clear_learned_cardinalities(root: &mut PlanNode) {
    root.visit_postorder_mut(&mut |node| {
        node.learned_rows = None;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Workload;
    use crate::dataset::Dataset;
    use rand::SeedableRng;

    #[test]
    fn injection_covers_every_node_and_tracks_truth() {
        let mut ds = Dataset::generate(Workload::TpcH, 1.0, 10, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for p in &mut ds.plans {
            inject_learned_cardinalities(&mut p.root, 0.1, &mut rng);
        }
        for p in &ds.plans {
            p.root.visit_postorder(&mut |n| {
                let learned = n.learned_rows.expect("injected everywhere");
                let ratio = learned / n.actual.rows.max(1.0);
                assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio}");
            });
        }
    }

    #[test]
    fn sigma_zero_is_a_perfect_oracle() {
        let mut ds = Dataset::generate(Workload::TpcH, 1.0, 5, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        inject_learned_cardinalities(&mut ds.plans[0].root, 0.0, &mut rng);
        ds.plans[0].root.visit_postorder(&mut |n| {
            assert_eq!(n.learned_rows, Some(n.actual.rows.max(1.0)));
        });
    }

    #[test]
    fn clear_restores_optimizer_only_estimates() {
        let mut ds = Dataset::generate(Workload::TpcH, 1.0, 5, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        inject_learned_cardinalities(&mut ds.plans[0].root, 0.2, &mut rng);
        clear_learned_cardinalities(&mut ds.plans[0].root);
        ds.plans[0].root.visit_postorder(&mut |n| assert_eq!(n.learned_rows, None));
    }
}
