//! The 70 TPC-DS query templates the paper evaluates.
//!
//! The paper uses the 70 TPC-DS templates that run on PostgreSQL without
//! modification; the template ids here match the x-axis of the paper's
//! Figure 8 (3, 6, 7, …, 97) plus template 98.
//!
//! Templates are data-driven: each `DsDef` captures the plan-shaping
//! skeleton of its TPC-DS counterpart — the driving fact table, the
//! dimensions it joins (with filter selectivities reflecting the predicate:
//! a year ≈ 0.2 of the sales history, a month ≈ 0.017, a brand ≈ 0.0015 of
//! `item`, …), additional fact tables (returns joins, cross-channel
//! self-joins, the notorious `inventory` join of q72), and the
//! aggregation/sort/limit epilogue. A shared builder lowers a definition to
//! a [`QuerySpec`], sampling per-query parameters.

use super::{groups_pair, SpecBuilder, Template};
use crate::catalog::Catalog;
use crate::operators::{AggOp, JoinType};
use crate::spec::{AggSpec, JoinInput, QuerySpec, SortSpec, MAX_SORT_KEYS};
use crate::util::{loguniform, sel_pair};
use rand::RngCore;

/// A filter: `(column, sel_lo, sel_hi, estimation_error_sigma)`.
#[derive(Clone, Copy)]
struct Filt(usize, f64, f64, f64);

/// A dimension join: the dim table plus an optional filter on it.
#[derive(Clone, Copy)]
struct Dim {
    table: &'static str,
    filt: Option<Filt>,
}

const fn dim(table: &'static str) -> Dim {
    Dim { table, filt: None }
}

const fn fdim(table: &'static str, f: Filt) -> Dim {
    Dim { table, filt: Some(f) }
}

/// How an extra fact table joins the accumulated plan.
#[derive(Clone, Copy)]
enum XJoin {
    /// Equijoin with key domain `rows(primary fact) / frac`, `frac` sampled
    /// log-uniformly — `frac ≈ 0.1` models a returns join (10% of sales are
    /// returned), `frac ≈ 1` a same-grain channel self-join.
    Inner { frac_lo: f64, frac_hi: f64, err: f64 },
    /// Semi join with a sampled match fraction.
    Semi { lo: f64, hi: f64, err: f64 },
    /// Anti join with a sampled match fraction.
    Anti { lo: f64, hi: f64, err: f64 },
}

/// An additional fact table with its own dimensions.
#[derive(Clone, Copy)]
struct Extra {
    table: &'static str,
    join: XJoin,
    filt: Option<Filt>,
    dims: &'static [Dim],
}

/// Group-count model for the aggregate.
#[derive(Clone, Copy)]
enum Groups {
    /// No aggregation.
    None,
    /// Absolute range (log-uniform).
    Abs(f64, f64),
    /// Fraction of a table's (scaled) row count.
    Frac(&'static str, f64, f64),
}

/// One TPC-DS template definition.
#[derive(Clone, Copy)]
struct DsDef {
    id: u32,
    fact: &'static str,
    fact_filt: Option<Filt>,
    /// Fact filter is a complex predicate evaluated in a separate node.
    complex_fact: bool,
    dims: &'static [Dim],
    extras: &'static [Extra],
    op: AggOp,
    groups: Groups,
    /// HAVING-like filter `(lo, hi, err)`.
    post: Option<(f64, f64, f64)>,
    sort: bool,
    limit: Option<f64>,
}

const fn base(id: u32, fact: &'static str) -> DsDef {
    DsDef {
        id,
        fact,
        fact_filt: None,
        complex_fact: false,
        dims: &[],
        extras: &[],
        op: AggOp::Sum,
        groups: Groups::None,
        post: None,
        sort: false,
        limit: None,
    }
}

// Frequently-used filters. Selectivities are relative to the slice of the
// dimension that intersects the sales history (see module docs).
const YEAR: Filt = Filt(1, 0.18, 0.22, 0.15); // one year on date_dim
const QUARTER: Filt = Filt(3, 0.04, 0.06, 0.2); // one quarter
const MONTH: Filt = Filt(2, 0.015, 0.02, 0.2); // one month
const MONTH_RANGE: Filt = Filt(2, 0.22, 0.28, 0.25); // a few months
const DAY_WINDOW: Filt = Filt(0, 0.008, 0.015, 0.3); // ~weeks of days
const ITEM_CATEGORY: Filt = Filt(1, 0.08, 0.12, 0.3);
const ITEM_CLASS: Filt = Filt(1, 0.03, 0.06, 0.35);
const ITEM_BRAND: Filt = Filt(2, 0.001, 0.002, 0.5);
const ITEM_MANUFACT: Filt = Filt(4, 0.0008, 0.0015, 0.5);
const ITEM_PRICE: Filt = Filt(3, 0.2, 0.4, 0.5);
const STORE_STATE: Filt = Filt(1, 0.2, 0.4, 0.25);
const CA_STATE: Filt = Filt(1, 0.02, 0.06, 0.35);
const CA_GMT: Filt = Filt(2, 0.25, 0.4, 0.3);
const CD_EDU: Filt = Filt(2, 0.1, 0.18, 0.3);
const CD_GENDER: Filt = Filt(1, 0.45, 0.55, 0.15);
const HD_DEP: Filt = Filt(1, 0.1, 0.25, 0.3);
const TIME_SLOT: Filt = Filt(0, 0.02, 0.05, 0.3);
const TIME_RANGE: Filt = Filt(0, 0.2, 0.4, 0.3);

const RETURNS: XJoin = XJoin::Inner { frac_lo: 0.08, frac_hi: 0.12, err: 0.35 };
const CHANNEL: XJoin = XJoin::Inner { frac_lo: 0.6, frac_hi: 1.4, err: 0.45 };

/// The 70 template definitions (ids from the paper's Figure 8, plus 98).
static DEFS: &[DsDef] = &[
    DsDef { fact_filt: None, dims: &[fdim("date_dim", YEAR), fdim("item", ITEM_MANUFACT)], op: AggOp::Sum, groups: Groups::Abs(60.0, 140.0), sort: true, limit: Some(100.0), ..base(3, "store_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH), fdim("item", ITEM_PRICE), dim("customer"), fdim("customer_address", CA_STATE)], groups: Groups::Abs(30.0, 70.0), post: Some((0.3, 0.5, 0.3)), sort: true, limit: Some(100.0), ..base(6, "store_sales") },
    DsDef { dims: &[fdim("customer_demographics", CD_GENDER), fdim("date_dim", YEAR), dim("item"), fdim("promotion", Filt(0, 0.4, 0.6, 0.3))], op: AggOp::Avg, groups: Groups::Frac("item", 0.8, 1.0), sort: true, limit: Some(100.0), ..base(7, "store_sales") },
    DsDef { dims: &[fdim("date_dim", QUARTER), dim("store"), fdim("customer_address", Filt(1, 0.03, 0.08, 0.4))], groups: Groups::Abs(10.0, 14.0), sort: true, limit: Some(100.0), ..base(8, "store_sales") },
    DsDef { fact_filt: Some(Filt(4, 0.15, 0.25, 0.35)), dims: &[dim("reason")], op: AggOp::Avg, groups: Groups::Abs(1.0, 1.0), ..base(9, "store_sales") },
    DsDef { dims: &[dim("store"), fdim("customer_demographics", CD_EDU), fdim("household_demographics", HD_DEP), fdim("customer_address", CA_STATE), fdim("date_dim", YEAR)], op: AggOp::Avg, groups: Groups::Abs(1.0, 1.0), ..base(13, "store_sales") },
    DsDef { dims: &[dim("customer"), fdim("customer_address", Filt(1, 0.04, 0.09, 0.4)), fdim("date_dim", QUARTER)], groups: Groups::Abs(300.0, 700.0), sort: true, limit: Some(100.0), ..base(15, "catalog_sales") },
    DsDef { dims: &[fdim("date_dim", QUARTER), dim("store"), dim("item")], extras: &[Extra { table: "store_returns", join: RETURNS, filt: None, dims: &[] }, Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }], op: AggOp::Count, groups: Groups::Abs(500.0, 1500.0), sort: true, limit: Some(100.0), ..base(17, "store_sales") },
    DsDef { dims: &[fdim("customer_demographics", CD_EDU), fdim("customer", Filt(2, 0.2, 0.3, 0.3)), dim("customer_address"), fdim("date_dim", YEAR), dim("item")], op: AggOp::Avg, groups: Groups::Abs(2000.0, 4000.0), sort: true, limit: Some(100.0), ..base(18, "catalog_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH), fdim("item", ITEM_MANUFACT), dim("customer"), dim("customer_address"), dim("store")], groups: Groups::Abs(400.0, 1000.0), sort: true, limit: Some(100.0), ..base(19, "store_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH_RANGE), dim("item")], op: AggOp::Avg, groups: Groups::Frac("item", 0.9, 1.1), sort: true, limit: Some(100.0), ..base(22, "inventory") },
    DsDef { dims: &[fdim("store", Filt(1, 0.05, 0.15, 0.3)), dim("item"), dim("customer"), fdim("customer_address", CA_STATE)], extras: &[Extra { table: "store_returns", join: RETURNS, filt: None, dims: &[] }], groups: Groups::Abs(500.0, 1500.0), post: Some((0.05, 0.15, 0.4)), sort: true, ..base(24, "store_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH), dim("store"), dim("item")], extras: &[Extra { table: "store_returns", join: RETURNS, filt: None, dims: &[] }, Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Abs(800.0, 2000.0), sort: true, limit: Some(100.0), ..base(25, "store_sales") },
    DsDef { dims: &[fdim("customer_demographics", CD_GENDER), fdim("date_dim", YEAR), fdim("promotion", Filt(0, 0.3, 0.5, 0.3)), dim("item")], op: AggOp::Avg, groups: Groups::Frac("item", 0.7, 1.0), sort: true, limit: Some(100.0), ..base(26, "catalog_sales") },
    DsDef { dims: &[fdim("customer_demographics", CD_GENDER), fdim("date_dim", YEAR), fdim("store", STORE_STATE), dim("item")], op: AggOp::Avg, groups: Groups::Frac("item", 0.8, 1.1), sort: true, limit: Some(100.0), ..base(27, "store_sales") },
    DsDef { fact_filt: Some(Filt(4, 0.1, 0.2, 0.45)), complex_fact: true, op: AggOp::Avg, groups: Groups::Abs(1.0, 1.0), limit: Some(100.0), ..base(28, "store_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH), dim("store"), dim("item")], extras: &[Extra { table: "store_returns", join: RETURNS, filt: None, dims: &[] }, Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }], op: AggOp::Avg, groups: Groups::Abs(800.0, 2000.0), sort: true, limit: Some(100.0), ..base(29, "store_sales") },
    DsDef { dims: &[fdim("date_dim", YEAR), dim("customer_address"), dim("customer")], groups: Groups::Frac("customer", 0.008, 0.015), post: Some((0.08, 0.12, 0.4)), sort: true, limit: Some(100.0), ..base(30, "web_returns") },
    DsDef { dims: &[fdim("date_dim", QUARTER), dim("customer_address")], extras: &[Extra { table: "web_sales", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Abs(300.0, 700.0), sort: true, ..base(31, "store_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH), fdim("item", ITEM_CATEGORY), fdim("customer_address", CA_GMT)], extras: &[Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }, Extra { table: "web_sales", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Abs(600.0, 1400.0), sort: true, limit: Some(100.0), ..base(33, "store_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH_RANGE), dim("customer")], extras: &[Extra { table: "catalog_sales", join: XJoin::Semi { lo: 0.25, hi: 0.45, err: 0.35 }, filt: None, dims: &[] }, Extra { table: "web_sales", join: XJoin::Semi { lo: 0.15, hi: 0.35, err: 0.35 }, filt: None, dims: &[] }], op: AggOp::Count, groups: Groups::Abs(1.0, 1.0), limit: Some(100.0), ..base(38, "store_sales") },
    DsDef { dims: &[dim("item"), dim("warehouse"), fdim("date_dim", MONTH)], extras: &[Extra { table: "inventory", join: CHANNEL, filt: None, dims: &[] }], op: AggOp::Avg, groups: Groups::Frac("item", 1.5, 2.5), post: Some((0.08, 0.15, 0.35)), sort: true, ..base(39, "inventory") },
    DsDef { fact_filt: Some(Filt(1, 0.0008, 0.002, 0.8)), complex_fact: true, op: AggOp::Count, groups: Groups::Abs(30.0, 80.0), sort: true, limit: Some(100.0), ..base(41, "item") },
    DsDef { dims: &[fdim("date_dim", MONTH), fdim("item", ITEM_CATEGORY)], groups: Groups::Abs(20.0, 40.0), sort: true, limit: Some(100.0), ..base(42, "store_sales") },
    DsDef { dims: &[fdim("date_dim", YEAR), dim("store")], groups: Groups::Abs(70.0, 100.0), sort: true, limit: Some(100.0), ..base(43, "store_sales") },
    DsDef { fact_filt: Some(Filt(3, 0.3, 0.5, 0.35)), dims: &[dim("item")], op: AggOp::Avg, groups: Groups::Frac("item", 0.9, 1.1), post: Some((0.005, 0.02, 0.5)), sort: true, limit: Some(100.0), ..base(44, "store_sales") },
    DsDef { dims: &[dim("customer"), dim("customer_address"), fdim("date_dim", QUARTER), fdim("item", Filt(0, 0.003, 0.008, 0.4))], groups: Groups::Abs(300.0, 700.0), sort: true, limit: Some(100.0), ..base(45, "web_sales") },
    DsDef { dims: &[fdim("date_dim", Filt(2, 0.25, 0.32, 0.2)), fdim("store", Filt(1, 0.1, 0.25, 0.3)), fdim("household_demographics", HD_DEP), dim("customer_address"), dim("customer")], groups: Groups::Frac("customer", 0.05, 0.15), sort: true, limit: Some(100.0), ..base(46, "store_sales") },
    DsDef { dims: &[dim("store"), fdim("customer_demographics", CD_EDU), fdim("customer_address", CA_STATE), fdim("date_dim", YEAR)], groups: Groups::Abs(1.0, 1.0), ..base(48, "store_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH)], extras: &[Extra { table: "web_returns", join: RETURNS, filt: None, dims: &[] }, Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }, Extra { table: "catalog_returns", join: RETURNS, filt: None, dims: &[] }], groups: Groups::Abs(600.0, 1400.0), sort: true, limit: Some(100.0), ..base(49, "web_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH), dim("store")], extras: &[Extra { table: "store_returns", join: RETURNS, filt: None, dims: &[Dim { table: "date_dim", filt: None }] }], groups: Groups::Abs(10.0, 14.0), sort: true, limit: Some(100.0), ..base(50, "store_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH_RANGE), dim("item")], extras: &[Extra { table: "store_sales", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Frac("item", 2.0, 4.0), sort: true, limit: Some(100.0), ..base(51, "web_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH), fdim("item", ITEM_BRAND)], groups: Groups::Abs(60.0, 140.0), sort: true, limit: Some(100.0), ..base(52, "store_sales") },
    DsDef { dims: &[fdim("item", ITEM_CLASS), fdim("date_dim", MONTH_RANGE), dim("store")], op: AggOp::Avg, groups: Groups::Abs(200.0, 500.0), post: Some((0.1, 0.2, 0.35)), sort: true, limit: Some(100.0), ..base(53, "store_sales") },
    DsDef { dims: &[fdim("item", ITEM_CLASS), fdim("date_dim", MONTH), dim("customer"), dim("customer_address")], extras: &[Extra { table: "store_sales", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Abs(15.0, 30.0), sort: true, limit: Some(100.0), ..base(54, "catalog_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH), fdim("item", ITEM_MANUFACT)], groups: Groups::Abs(60.0, 140.0), sort: true, limit: Some(100.0), ..base(55, "store_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH), fdim("item", ITEM_CATEGORY), fdim("customer_address", CA_GMT)], extras: &[Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }, Extra { table: "web_sales", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Abs(600.0, 1400.0), sort: true, limit: Some(100.0), ..base(56, "store_sales") },
    DsDef { dims: &[fdim("date_dim", YEAR), dim("item"), dim("call_center")], op: AggOp::Avg, groups: Groups::Frac("item", 0.5, 0.9), post: Some((0.03, 0.08, 0.4)), sort: true, limit: Some(100.0), ..base(57, "catalog_sales") },
    DsDef { dims: &[fdim("date_dim", DAY_WINDOW), dim("item")], extras: &[Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }, Extra { table: "web_sales", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Abs(300.0, 800.0), post: Some((0.08, 0.15, 0.35)), sort: true, limit: Some(100.0), ..base(58, "store_sales") },
    DsDef { dims: &[fdim("date_dim", YEAR), dim("store")], extras: &[Extra { table: "store_sales", join: CHANNEL, filt: None, dims: &[Dim { table: "date_dim", filt: None }] }], groups: Groups::Abs(400.0, 800.0), sort: true, limit: Some(100.0), ..base(59, "store_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH), fdim("item", ITEM_CATEGORY), fdim("customer_address", CA_GMT)], extras: &[Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }, Extra { table: "web_sales", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Abs(600.0, 1400.0), sort: true, limit: Some(100.0), ..base(60, "store_sales") },
    DsDef { dims: &[fdim("promotion", Filt(0, 0.25, 0.45, 0.35)), dim("store"), fdim("customer_address", CA_GMT), fdim("date_dim", MONTH), fdim("item", ITEM_CATEGORY), dim("customer")], groups: Groups::Abs(1.0, 1.0), limit: Some(100.0), ..base(61, "store_sales") },
    DsDef { dims: &[dim("ship_mode"), dim("web_site"), fdim("date_dim", MONTH_RANGE)], op: AggOp::Count, groups: Groups::Abs(90.0, 150.0), sort: true, limit: Some(100.0), ..base(62, "web_sales") },
    DsDef { dims: &[fdim("item", ITEM_CLASS), fdim("date_dim", MONTH_RANGE), dim("store")], op: AggOp::Avg, groups: Groups::Abs(200.0, 500.0), post: Some((0.1, 0.2, 0.35)), sort: true, limit: Some(100.0), ..base(63, "store_sales") },
    DsDef { fact_filt: Some(Filt(4, 0.03, 0.08, 0.5)), dims: &[fdim("date_dim", YEAR), dim("store"), dim("customer"), fdim("customer_demographics", CD_GENDER), fdim("household_demographics", HD_DEP), dim("customer_address"), fdim("item", ITEM_PRICE)], extras: &[Extra { table: "store_returns", join: RETURNS, filt: None, dims: &[] }, Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }, Extra { table: "catalog_returns", join: RETURNS, filt: None, dims: &[] }], groups: Groups::Abs(5000.0, 15000.0), sort: true, ..base(64, "store_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH_RANGE), dim("store"), dim("item")], extras: &[Extra { table: "store_sales", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Frac("item", 2.0, 4.0), post: Some((0.08, 0.15, 0.35)), sort: true, limit: Some(100.0), ..base(65, "store_sales") },
    DsDef { dims: &[fdim("date_dim", YEAR), fdim("time_dim", TIME_RANGE), dim("ship_mode"), dim("warehouse")], extras: &[Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Abs(40.0, 80.0), sort: true, limit: Some(100.0), ..base(66, "web_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH_RANGE), dim("store"), dim("item")], groups: Groups::Frac("item", 4.0, 8.0), sort: true, limit: Some(100.0), ..base(67, "store_sales") },
    DsDef { dims: &[fdim("date_dim", Filt(2, 0.08, 0.15, 0.25)), fdim("store", Filt(1, 0.1, 0.25, 0.3)), fdim("household_demographics", HD_DEP), dim("customer_address"), dim("customer")], groups: Groups::Frac("customer", 0.03, 0.08), sort: true, limit: Some(100.0), ..base(68, "store_sales") },
    DsDef { dims: &[fdim("customer_demographics", CD_GENDER), fdim("customer_address", CA_STATE)], extras: &[Extra { table: "store_sales", join: XJoin::Semi { lo: 0.3, hi: 0.5, err: 0.35 }, filt: None, dims: &[] }, Extra { table: "web_sales", join: XJoin::Anti { lo: 0.2, hi: 0.4, err: 0.4 }, filt: None, dims: &[] }, Extra { table: "catalog_sales", join: XJoin::Anti { lo: 0.2, hi: 0.4, err: 0.4 }, filt: None, dims: &[] }], op: AggOp::Count, groups: Groups::Abs(150.0, 350.0), sort: true, limit: Some(100.0), ..base(69, "customer") },
    DsDef { dims: &[fdim("item", ITEM_MANUFACT), fdim("date_dim", MONTH), fdim("time_dim", TIME_RANGE)], extras: &[Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }, Extra { table: "store_sales", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Abs(1000.0, 3000.0), sort: true, ..base(71, "web_sales") },
    DsDef { dims: &[dim("warehouse"), dim("item"), fdim("customer_demographics", CD_GENDER), fdim("household_demographics", HD_DEP), fdim("date_dim", YEAR)], extras: &[Extra { table: "inventory", join: XJoin::Inner { frac_lo: 2.5, frac_hi: 4.5, err: 0.45 }, filt: Some(Filt(2, 0.3, 0.5, 0.4)), dims: &[] }], op: AggOp::Count, groups: Groups::Frac("item", 0.2, 0.5), sort: true, limit: Some(100.0), ..base(72, "catalog_sales") },
    DsDef { dims: &[fdim("date_dim", Filt(2, 0.08, 0.15, 0.25)), fdim("store", STORE_STATE), fdim("household_demographics", HD_DEP), dim("customer")], op: AggOp::Count, groups: Groups::Frac("customer", 0.01, 0.04), post: Some((0.03, 0.08, 0.4)), sort: true, ..base(73, "store_sales") },
    DsDef { dims: &[fdim("date_dim", YEAR), fdim("item", ITEM_CATEGORY)], extras: &[Extra { table: "catalog_returns", join: RETURNS, filt: None, dims: &[] }, Extra { table: "store_sales", join: CHANNEL, filt: None, dims: &[] }, Extra { table: "store_returns", join: RETURNS, filt: None, dims: &[] }, Extra { table: "web_sales", join: CHANNEL, filt: None, dims: &[] }, Extra { table: "web_returns", join: RETURNS, filt: None, dims: &[] }], groups: Groups::Abs(3000.0, 8000.0), sort: true, ..base(75, "catalog_sales") },
    DsDef { fact_filt: Some(Filt(2, 0.03, 0.08, 0.5)), dims: &[dim("item"), dim("date_dim")], extras: &[Extra { table: "web_sales", join: CHANNEL, filt: None, dims: &[] }, Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }], op: AggOp::Count, groups: Groups::Abs(60.0, 140.0), sort: true, limit: Some(100.0), ..base(76, "store_sales") },
    DsDef { dims: &[fdim("date_dim", YEAR), dim("customer")], extras: &[Extra { table: "store_returns", join: XJoin::Anti { lo: 0.08, hi: 0.12, err: 0.4 }, filt: None, dims: &[] }, Extra { table: "web_sales", join: CHANNEL, filt: None, dims: &[] }, Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Frac("customer", 0.05, 0.15), sort: true, limit: Some(100.0), ..base(78, "store_sales") },
    DsDef { dims: &[fdim("date_dim", Filt(2, 0.08, 0.15, 0.25)), fdim("store", Filt(1, 0.1, 0.3, 0.3)), fdim("household_demographics", HD_DEP), dim("customer")], groups: Groups::Frac("customer", 0.03, 0.08), sort: true, limit: Some(100.0), ..base(79, "store_sales") },
    DsDef { dims: &[fdim("date_dim", YEAR), dim("customer_address"), dim("customer")], groups: Groups::Frac("customer", 0.01, 0.03), post: Some((0.08, 0.12, 0.4)), sort: true, limit: Some(100.0), ..base(81, "catalog_returns") },
    DsDef { dims: &[fdim("date_dim", DAY_WINDOW), dim("item")], extras: &[Extra { table: "catalog_returns", join: CHANNEL, filt: None, dims: &[] }, Extra { table: "web_returns", join: CHANNEL, filt: None, dims: &[] }], groups: Groups::Abs(300.0, 700.0), sort: true, limit: Some(100.0), ..base(83, "store_returns") },
    DsDef { dims: &[fdim("customer_address", Filt(1, 0.01, 0.03, 0.4)), dim("customer_demographics"), dim("household_demographics"), fdim("income_band", Filt(0, 0.08, 0.15, 0.3)), dim("customer")], extras: &[Extra { table: "store_returns", join: XJoin::Inner { frac_lo: 0.8, frac_hi: 1.2, err: 0.4 }, filt: None, dims: &[] }], op: AggOp::Count, groups: Groups::None, sort: true, limit: Some(100.0), ..base(84, "customer") },
    DsDef { fact_filt: Some(Filt(3, 0.25, 0.4, 0.35)), dims: &[fdim("customer_demographics", CD_EDU), fdim("customer_address", CA_STATE), fdim("date_dim", YEAR), dim("reason")], extras: &[Extra { table: "web_returns", join: RETURNS, filt: None, dims: &[] }], op: AggOp::Avg, groups: Groups::Abs(25.0, 40.0), sort: true, limit: Some(100.0), ..base(85, "web_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH_RANGE), dim("customer")], extras: &[Extra { table: "catalog_sales", join: XJoin::Anti { lo: 0.3, hi: 0.5, err: 0.35 }, filt: None, dims: &[] }, Extra { table: "web_sales", join: XJoin::Anti { lo: 0.3, hi: 0.5, err: 0.35 }, filt: None, dims: &[] }], op: AggOp::Count, groups: Groups::Abs(1.0, 1.0), ..base(87, "store_sales") },
    DsDef { dims: &[fdim("household_demographics", HD_DEP), fdim("time_dim", Filt(0, 0.15, 0.25, 0.25)), dim("store")], op: AggOp::Count, groups: Groups::Abs(1.0, 1.0), ..base(88, "store_sales") },
    DsDef { dims: &[fdim("item", ITEM_CLASS), fdim("date_dim", YEAR), dim("store")], op: AggOp::Avg, groups: Groups::Abs(5000.0, 15000.0), post: Some((0.08, 0.15, 0.35)), sort: true, limit: Some(100.0), ..base(89, "store_sales") },
    DsDef { dims: &[fdim("household_demographics", HD_DEP), fdim("time_dim", Filt(0, 0.06, 0.1, 0.3)), dim("web_page")], op: AggOp::Count, groups: Groups::Abs(1.0, 1.0), limit: Some(100.0), ..base(90, "web_sales") },
    DsDef { dims: &[dim("call_center"), fdim("date_dim", MONTH), dim("customer"), fdim("customer_demographics", CD_GENDER), fdim("household_demographics", HD_DEP), fdim("customer_address", CA_GMT)], groups: Groups::Abs(5.0, 7.0), sort: true, ..base(91, "catalog_returns") },
    DsDef { dims: &[], extras: &[Extra { table: "store_returns", join: RETURNS, filt: None, dims: &[Dim { table: "reason", filt: Some(Filt(0, 0.02, 0.05, 0.3)) }] }], groups: Groups::Frac("customer", 0.3, 0.6), sort: true, limit: Some(100.0), ..base(93, "store_sales") },
    DsDef { dims: &[fdim("household_demographics", HD_DEP), fdim("time_dim", TIME_SLOT), dim("store")], op: AggOp::Count, groups: Groups::Abs(1.0, 1.0), limit: Some(100.0), ..base(96, "store_sales") },
    DsDef { dims: &[fdim("date_dim", MONTH_RANGE)], extras: &[Extra { table: "catalog_sales", join: CHANNEL, filt: None, dims: &[] }], op: AggOp::Count, groups: Groups::Abs(3.0, 3.0), ..base(97, "store_sales") },
    DsDef { dims: &[fdim("date_dim", Filt(2, 0.025, 0.04, 0.25)), fdim("item", Filt(1, 0.25, 0.35, 0.3))], groups: Groups::Frac("item", 0.2, 0.4), sort: true, ..base(98, "store_sales") },
];

/// Lowers a template definition to a sampled [`QuerySpec`].
fn build_def(def: &DsDef, cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let fact_rows = b.rows(def.fact);

    // Driving fact table (optionally filtered).
    let mut cur = match (def.fact_filt, def.complex_fact) {
        (Some(Filt(col, lo, hi, err)), false) => b.filtered(rng, def.fact, col, lo, hi, err),
        (Some(Filt(col, lo, hi, err)), true) => b.complex_filtered(rng, def.fact, col, lo, hi, err),
        (None, _) => b.term(def.fact),
    };

    // Dimension joins, left-deep; skew widens with join depth, modelling
    // compounding correlation the optimizer cannot see.
    for (depth, d) in def.dims.iter().enumerate() {
        let dim_input = match d.filt {
            Some(Filt(col, lo, hi, err)) => b.filtered(rng, d.table, col, lo, hi, err),
            None => b.term(d.table),
        };
        let skew_sigma = 0.22 + 0.07 * depth as f64;
        cur = b.fk(rng, cur, dim_input, d.table, skew_sigma);
    }

    // Extra fact tables (returns / cross-channel / inventory joins).
    for e in def.extras {
        let mut ext = match e.filt {
            Some(Filt(col, lo, hi, err)) => b.filtered(rng, e.table, col, lo, hi, err),
            None => b.term(e.table),
        };
        for d in e.dims {
            let dim_input = match d.filt {
                Some(Filt(col, lo, hi, err)) => b.filtered(rng, d.table, col, lo, hi, err),
                None => b.term(d.table),
            };
            ext = b.fk(rng, ext, dim_input, d.table, 0.25);
        }
        cur = match e.join {
            XJoin::Inner { frac_lo, frac_hi, err } => {
                let domain = fact_rows / loguniform(rng, frac_lo, frac_hi).max(1e-6);
                b.domain_join(rng, cur, ext, JoinType::Inner, domain, err)
            }
            XJoin::Semi { lo, hi, err } => b.match_join(rng, cur, ext, JoinType::Semi, lo, hi, err),
            XJoin::Anti { lo, hi, err } => b.match_join(rng, cur, ext, JoinType::Anti, lo, hi, err),
        };
    }

    let mut q = b.finish(cur);
    q.agg = match def.groups {
        Groups::None => None,
        Groups::Abs(lo, hi) => {
            let (g, e) = groups_pair(rng, lo, hi, 0.3);
            Some(AggSpec { op: def.op, groups: g, est_groups: e, partial: false })
        }
        Groups::Frac(table, lo, hi) => {
            let rows = cat.rows(cat.table_id(table));
            let (g, e) = groups_pair(rng, rows * lo, rows * hi, 0.35);
            Some(AggSpec { op: def.op, groups: g, est_groups: e, partial: false })
        }
    };
    q.post_filter = def.post.map(|(lo, hi, err)| sel_pair(rng, lo, hi, err));
    if def.sort {
        q.sort = Some(SortSpec { key: def.id as usize % MAX_SORT_KEYS });
    }
    q.limit = def.limit;
    debug_assert!(matches!(q.join, JoinInput::Term(_) | JoinInput::Join(_)));
    q
}

fn gen_by_id(id: u32, cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let def = DEFS
        .iter()
        .find(|d| d.id == id)
        .unwrap_or_else(|| panic!("no TPC-DS template with id {id}"));
    build_def(def, cat, rng)
}

macro_rules! ds_tpl {
    ($id:literal) => {{
        fn w(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
            gen_by_id($id, cat, rng)
        }
        Template { id: $id, name: concat!("tpc-ds q", $id), gen: w }
    }};
}

static TEMPLATES: &[Template] = &[
    ds_tpl!(3), ds_tpl!(6), ds_tpl!(7), ds_tpl!(8), ds_tpl!(9),
    ds_tpl!(13), ds_tpl!(15), ds_tpl!(17), ds_tpl!(18), ds_tpl!(19),
    ds_tpl!(22), ds_tpl!(24), ds_tpl!(25), ds_tpl!(26), ds_tpl!(27),
    ds_tpl!(28), ds_tpl!(29), ds_tpl!(30), ds_tpl!(31), ds_tpl!(33),
    ds_tpl!(38), ds_tpl!(39), ds_tpl!(41), ds_tpl!(42), ds_tpl!(43),
    ds_tpl!(44), ds_tpl!(45), ds_tpl!(46), ds_tpl!(48), ds_tpl!(49),
    ds_tpl!(50), ds_tpl!(51), ds_tpl!(52), ds_tpl!(53), ds_tpl!(54),
    ds_tpl!(55), ds_tpl!(56), ds_tpl!(57), ds_tpl!(58), ds_tpl!(59),
    ds_tpl!(60), ds_tpl!(61), ds_tpl!(62), ds_tpl!(63), ds_tpl!(64),
    ds_tpl!(65), ds_tpl!(66), ds_tpl!(67), ds_tpl!(68), ds_tpl!(69),
    ds_tpl!(71), ds_tpl!(72), ds_tpl!(73), ds_tpl!(75), ds_tpl!(76),
    ds_tpl!(78), ds_tpl!(79), ds_tpl!(81), ds_tpl!(83), ds_tpl!(84),
    ds_tpl!(85), ds_tpl!(87), ds_tpl!(88), ds_tpl!(89), ds_tpl!(90),
    ds_tpl!(91), ds_tpl!(93), ds_tpl!(96), ds_tpl!(97), ds_tpl!(98),
];

/// All 70 TPC-DS templates.
pub fn templates() -> &'static [Template] {
    TEMPLATES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Workload;
    use crate::executor::Executor;
    use crate::optimizer::Optimizer;
    use crate::plan::Plan;
    use rand::SeedableRng;

    #[test]
    fn every_def_has_a_template_and_vice_versa() {
        let mut def_ids: Vec<u32> = DEFS.iter().map(|d| d.id).collect();
        let mut tpl_ids: Vec<u32> = TEMPLATES.iter().map(|t| t.id).collect();
        def_ids.sort_unstable();
        tpl_ids.sort_unstable();
        assert_eq!(def_ids, tpl_ids);
        assert_eq!(def_ids.len(), 70);
    }

    #[test]
    fn defs_reference_valid_tables_and_columns() {
        let cat = Catalog::tpcds(1.0);
        let check_filt = |table: &str, f: &Filt| {
            let t = cat.table(cat.table_id(table));
            assert!(f.0 < t.columns.len(), "{table} col {} out of range", f.0);
        };
        for d in DEFS {
            let _ = cat.table_id(d.fact);
            if let Some(f) = &d.fact_filt {
                check_filt(d.fact, f);
            }
            for dim in d.dims {
                let _ = cat.table_id(dim.table);
                if let Some(f) = &dim.filt {
                    check_filt(dim.table, f);
                }
            }
            for e in d.extras {
                let _ = cat.table_id(e.table);
                if let Some(f) = &e.filt {
                    check_filt(e.table, f);
                }
                for dim in e.dims {
                    if let Some(f) = &dim.filt {
                        check_filt(dim.table, f);
                    }
                }
            }
        }
    }

    fn build(cat: &Catalog, id: u32, seed: u64) -> Plan {
        let t = TEMPLATES.iter().find(|t| t.id == id).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let spec = (t.gen)(cat, &mut rng);
        let mut root = Optimizer::new(cat).build(&spec, &mut rng);
        Executor::new(cat).run(&mut root, &mut rng);
        Plan { root, workload: Workload::TpcDs, template_id: id, query_id: 0 }
    }

    #[test]
    fn q41_is_tiny_and_q64_is_huge() {
        let cat = Catalog::tpcds(1.0);
        let tiny = build(&cat, 41, 1).latency_ms();
        let huge = build(&cat, 64, 1).latency_ms();
        assert!(huge > tiny * 100.0, "q41={tiny}ms q64={huge}ms");
    }

    #[test]
    fn average_plan_size_exceeds_tpch() {
        // Paper: average TPC-DS plan has ~22 operators vs. ~18 for TPC-H.
        let cat = Catalog::tpcds(1.0);
        let mut total = 0usize;
        for (i, t) in TEMPLATES.iter().enumerate() {
            total += build(&cat, t.id, 50 + i as u64).node_count();
        }
        let avg = total as f64 / TEMPLATES.len() as f64;
        assert!(avg > 6.0, "average plan size {avg}");
    }

    #[test]
    fn template_latencies_span_orders_of_magnitude() {
        let cat = Catalog::tpcds(1.0);
        let lats: Vec<f64> = TEMPLATES
            .iter()
            .enumerate()
            .map(|(i, t)| build(&cat, t.id, 300 + i as u64).latency_ms())
            .collect();
        let min = lats.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lats.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 100.0, "latency spread too small: {min}..{max}");
    }
}
