//! Workload generators: parameterized query templates.
//!
//! A [`Template`] plays the role of a TPC query template: each invocation
//! samples predicate selectivities, join skews and estimation errors from
//! template-specific ranges and produces a logical [`QuerySpec`]. The
//! optimizer may then choose different physical plans for different
//! parameter draws — exactly like the paper's workloads, where each of the
//! 20,000 queries per benchmark instantiates one template.
//!
//! * [`tpch`] — all 22 TPC-H templates;
//! * [`tpcds`] — the 70 TPC-DS templates that run on PostgreSQL
//!   unmodified, matching the template ids on the x-axis of the paper's
//!   Figure 8.

pub mod tpcds;
pub mod tpch;

use crate::catalog::{Catalog, Workload};
use crate::spec::{FilterSpec, JoinCard, JoinInput, JoinSpec, QuerySpec, TableTerm};
use crate::operators::JoinType;
use crate::util::{lognormal, loguniform, sel_pair};
use rand::RngCore;

/// A parameterized query template.
#[derive(Clone, Copy)]
pub struct Template {
    /// Template id (TPC query number).
    pub id: u32,
    /// Human-readable name.
    pub name: &'static str,
    /// Samples one query instance.
    pub gen: fn(&Catalog, &mut dyn RngCore) -> QuerySpec,
}

impl std::fmt::Debug for Template {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Template").field("id", &self.id).field("name", &self.name).finish()
    }
}

/// Returns the template set for a workload.
pub fn templates(workload: Workload) -> &'static [Template] {
    match workload {
        Workload::TpcH => tpch::TEMPLATES,
        Workload::TpcDs => tpcds::templates(),
    }
}

// ---------------------------------------------------------------------------
// Spec-building helpers shared by the template definitions.
// ---------------------------------------------------------------------------

/// Incrementally builds a [`QuerySpec`].
pub(crate) struct SpecBuilder<'a> {
    cat: &'a Catalog,
    terms: Vec<TableTerm>,
}

impl<'a> SpecBuilder<'a> {
    pub(crate) fn new(cat: &'a Catalog) -> Self {
        SpecBuilder { cat, terms: Vec::new() }
    }

    /// Adds an unfiltered relation; returns its term as a join input.
    pub(crate) fn term(&mut self, table: &str) -> JoinInput {
        self.terms.push(TableTerm { table: self.cat.table_id(table), filter: None });
        JoinInput::Term(self.terms.len() - 1)
    }

    /// Adds a relation with a pushed-down predicate on `col`, with true
    /// selectivity log-uniform in `[lo, hi]` and estimation error `err`.
    pub(crate) fn filtered(
        &mut self,
        rng: &mut dyn RngCore,
        table: &str,
        col: usize,
        lo: f64,
        hi: f64,
        err: f64,
    ) -> JoinInput {
        let (true_sel, est_sel) = sel_pair(rng, lo, hi, err);
        self.terms.push(TableTerm {
            table: self.cat.table_id(table),
            filter: Some(FilterSpec { col, true_sel, est_sel, separate_node: false }),
        });
        JoinInput::Term(self.terms.len() - 1)
    }

    /// Like [`SpecBuilder::filtered`] but the predicate is too complex to
    /// push into the scan and becomes a separate Filter node.
    pub(crate) fn complex_filtered(
        &mut self,
        rng: &mut dyn RngCore,
        table: &str,
        col: usize,
        lo: f64,
        hi: f64,
        err: f64,
    ) -> JoinInput {
        let (true_sel, est_sel) = sel_pair(rng, lo, hi, err);
        self.terms.push(TableTerm {
            table: self.cat.table_id(table),
            filter: Some(FilterSpec { col, true_sel, est_sel, separate_node: true }),
        });
        JoinInput::Term(self.terms.len() - 1)
    }

    /// Global scale on join-skew widths. Raising it makes cardinality
    /// estimates compound errors faster through join trees, which is the
    /// dominant difficulty of real-world performance prediction.
    pub(crate) const SKEW_SCALE: f64 = 1.6;

    /// Foreign-key join with hidden skew sampled at width `skew_sigma`
    /// (scaled by [`Self::SKEW_SCALE`]).
    pub(crate) fn fk(
        &self,
        rng: &mut dyn RngCore,
        left: JoinInput,
        right: JoinInput,
        pk_table: &str,
        skew_sigma: f64,
    ) -> JoinInput {
        JoinInput::Join(Box::new(JoinSpec {
            left,
            right,
            jtype: JoinType::Inner,
            card: JoinCard::ForeignKey {
                pk_table: self.cat.table_id(pk_table),
                skew: lognormal(rng, skew_sigma * Self::SKEW_SCALE),
            },
        }))
    }

    /// Equijoin with an explicit key-domain size.
    pub(crate) fn domain_join(
        &self,
        rng: &mut dyn RngCore,
        left: JoinInput,
        right: JoinInput,
        jtype: JoinType,
        domain_rows: f64,
        skew_sigma: f64,
    ) -> JoinInput {
        JoinInput::Join(Box::new(JoinSpec {
            left,
            right,
            jtype,
            card: JoinCard::Domain { rows: domain_rows.max(1.0), skew: lognormal(rng, skew_sigma) },
        }))
    }

    /// Semi or anti join with a sampled match fraction.
    // The join spec genuinely has this many independent knobs; bundling
    // them into a one-off struct would only rename the problem.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn match_join(
        &self,
        rng: &mut dyn RngCore,
        left: JoinInput,
        right: JoinInput,
        jtype: JoinType,
        lo: f64,
        hi: f64,
        err: f64,
    ) -> JoinInput {
        let (true_frac, est_frac) = sel_pair(rng, lo, hi, err);
        JoinInput::Join(Box::new(JoinSpec {
            left,
            right,
            jtype,
            card: JoinCard::MatchFraction { true_frac, est_frac },
        }))
    }

    /// Rows of a named table at the catalog's scale factor.
    pub(crate) fn rows(&self, table: &str) -> f64 {
        self.cat.rows(self.cat.table_id(table))
    }

    /// Finalizes the spec.
    pub(crate) fn finish(self, join: JoinInput) -> QuerySpec {
        QuerySpec {
            terms: self.terms,
            join,
            post_filter: None,
            agg: None,
            sort: None,
            limit: None,
        }
    }
}

/// Samples a `(true, estimated)` group count, log-uniform in `[lo, hi]`.
pub(crate) fn groups_pair(rng: &mut dyn RngCore, lo: f64, hi: f64, err: f64) -> (f64, f64) {
    let g = loguniform(rng, lo.max(1.0), hi.max(1.0));
    let e = (g * lognormal(rng, err)).max(1.0);
    (g, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Optimizer;
    use crate::executor::Executor;
    use rand::SeedableRng;

    /// Every template of both workloads must produce valid specs that plan
    /// and execute, over many parameter draws.
    #[test]
    fn all_templates_generate_plannable_queries() {
        for workload in [Workload::TpcH, Workload::TpcDs] {
            let cat = Catalog::for_workload(workload, 1.0);
            let opt = Optimizer::new(&cat);
            let ex = Executor::new(&cat);
            for t in templates(workload) {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + t.id as u64);
                for _ in 0..3 {
                    let spec = (t.gen)(&cat, &mut rng);
                    spec.validate(cat.num_tables())
                        .unwrap_or_else(|e| panic!("{} template {}: {e}", workload.name(), t.id));
                    let mut plan = opt.build(&spec, &mut rng);
                    let latency = ex.run(&mut plan, &mut rng);
                    assert!(
                        latency.is_finite() && latency > 0.0,
                        "{} template {} produced latency {latency}",
                        workload.name(),
                        t.id
                    );
                }
            }
        }
    }

    #[test]
    fn template_counts_match_the_paper() {
        assert_eq!(templates(Workload::TpcH).len(), 22);
        assert_eq!(templates(Workload::TpcDs).len(), 70);
    }

    #[test]
    fn template_ids_are_unique() {
        for workload in [Workload::TpcH, Workload::TpcDs] {
            let mut ids: Vec<u32> = templates(workload).iter().map(|t| t.id).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "{}", workload.name());
        }
    }

    #[test]
    fn same_seed_gives_same_spec() {
        let cat = Catalog::tpch(1.0);
        let t = &tpch::TEMPLATES[2];
        let a = (t.gen)(&cat, &mut rand::rngs::StdRng::seed_from_u64(5));
        let b = (t.gen)(&cat, &mut rand::rngs::StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn different_draws_vary_parameters() {
        let cat = Catalog::tpch(1.0);
        let t = &tpch::TEMPLATES[5]; // Q6: selectivity-driven
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let a = (t.gen)(&cat, &mut rng);
        let b = (t.gen)(&cat, &mut rng);
        assert_ne!(a, b);
    }
}
