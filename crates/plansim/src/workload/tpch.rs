//! The 22 TPC-H query templates.
//!
//! Each template reproduces the *plan-shaping* characteristics of its TPC-H
//! counterpart — which relations are joined in what shape, how selective the
//! predicates are (with realistic estimation-error widths: simple range
//! predicates estimate well, `LIKE`/`OR` predicates estimate poorly), which
//! queries aggregate/sort/limit — rather than its SQL text. Parameter
//! substitution (the `[dates]`, `[segments]`, `[brands]` of the official
//! templates) becomes sampling selectivities from per-template ranges.

use super::{groups_pair, SpecBuilder, Template};
use crate::catalog::Catalog;
use crate::operators::{AggOp, JoinType};
use crate::spec::{AggSpec, QuerySpec, SortSpec};
use rand::{Rng, RngCore};

fn agg(op: AggOp, groups: (f64, f64)) -> Option<AggSpec> {
    Some(AggSpec { op, groups: groups.0, est_groups: groups.1, partial: false })
}

/// Q1: pricing summary report. Full scan of `lineitem` with a generous
/// shipdate predicate, grouped aggregation into a handful of groups, sort.
fn q1(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let l = b.filtered(rng, "lineitem", 3, 0.92, 0.99, 0.05);
    let mut q = b.finish(l);
    q.agg = agg(AggOp::Sum, (6.0, 6.0));
    q.sort = Some(SortSpec { key: 0 });
    q
}

/// Q2: minimum-cost supplier. Five-way join with a bushy nation⋈region
/// subtree, sorted output, limit 100.
fn q2(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let part = b.filtered(rng, "part", 1, 0.002, 0.04, 0.35);
    let ps = b.term("partsupp");
    let supp = b.term("supplier");
    let nation = b.term("nation");
    let region = b.filtered(rng, "region", 0, 0.2, 0.2, 0.05);
    let nr = b.fk(rng, nation, region, "region", 0.1);
    let sn = b.fk(rng, supp, nr, "nation", 0.15);
    let psp = b.fk(rng, ps, part, "part", 0.2);
    let all = b.fk(rng, psp, sn, "supplier", 0.25);
    let mut q = b.finish(all);
    q.sort = Some(SortSpec { key: 1 });
    q.limit = Some(100.0);
    q
}

/// Q3: shipping priority. customer ⋈ orders ⋈ lineitem, grouped by order,
/// top-10.
fn q3(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let cust = b.filtered(rng, "customer", 3, 0.18, 0.22, 0.15);
    let orders = b.filtered(rng, "orders", 2, 0.4, 0.5, 0.2);
    let line = b.filtered(rng, "lineitem", 3, 0.5, 0.6, 0.2);
    let co = b.fk(rng, orders, cust, "customer", 0.25);
    let col = b.fk(rng, line, co, "orders", 0.3);
    let groups = b.rows("orders") * 0.08;
    let mut q = b.finish(col);
    q.agg = agg(AggOp::Sum, groups_pair(rng, groups * 0.5, groups * 1.5, 0.3));
    q.sort = Some(SortSpec { key: 2 });
    q.limit = Some(10.0);
    q
}

/// Q4: order priority checking. orders semi-joined with late lineitems.
fn q4(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let orders = b.filtered(rng, "orders", 2, 0.03, 0.05, 0.15);
    let line = b.term("lineitem");
    let semi = b.match_join(rng, orders, line, JoinType::Semi, 0.55, 0.70, 0.25);
    let mut q = b.finish(semi);
    q.agg = agg(AggOp::Count, (5.0, 5.0));
    q.sort = Some(SortSpec { key: 0 });
    q
}

/// Q5: local supplier volume. Six-way join down to a region filter.
fn q5(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let cust = b.term("customer");
    let orders = b.filtered(rng, "orders", 2, 0.14, 0.16, 0.15);
    let line = b.term("lineitem");
    let supp = b.term("supplier");
    let nation = b.term("nation");
    let region = b.filtered(rng, "region", 0, 0.2, 0.2, 0.05);
    let nr = b.fk(rng, nation, region, "region", 0.1);
    let sn = b.fk(rng, supp, nr, "nation", 0.2);
    let oc = b.fk(rng, orders, cust, "customer", 0.25);
    let lo = b.fk(rng, line, oc, "orders", 0.3);
    let all = b.fk(rng, lo, sn, "supplier", 0.35);
    let mut q = b.finish(all);
    q.agg = agg(AggOp::Sum, (5.0, 5.0));
    q.sort = Some(SortSpec { key: 3 });
    q
}

/// Q6: forecasting revenue change. Single highly-selective lineitem scan,
/// plain aggregate — the classic "how good is your selectivity estimate"
/// query.
fn q6(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let l = b.filtered(rng, "lineitem", 3, 0.005, 0.025, 0.30);
    let mut q = b.finish(l);
    q.agg = agg(AggOp::Sum, (1.0, 1.0));
    q
}

/// Q7: volume shipping between two nations.
fn q7(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let supp = b.filtered(rng, "supplier", 1, 0.04, 0.08, 0.2);
    let line = b.filtered(rng, "lineitem", 3, 0.28, 0.32, 0.15);
    let orders = b.term("orders");
    let cust = b.filtered(rng, "customer", 1, 0.04, 0.08, 0.2);
    let ls = b.fk(rng, line, supp, "supplier", 0.25);
    let lso = b.fk(rng, ls, orders, "orders", 0.3);
    let all = b.fk(rng, lso, cust, "customer", 0.35);
    let mut q = b.finish(all);
    q.agg = agg(AggOp::Sum, (4.0, 4.0));
    q.sort = Some(SortSpec { key: 0 });
    q
}

/// Q8: national market share. Widest join in the benchmark (8 relations;
/// we keep 6 with the region⋈nation bushy arm).
fn q8(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let part = b.filtered(rng, "part", 3, 0.001, 0.004, 0.45);
    let line = b.term("lineitem");
    let orders = b.filtered(rng, "orders", 2, 0.3, 0.32, 0.1);
    let cust = b.term("customer");
    let nation = b.term("nation");
    let region = b.filtered(rng, "region", 0, 0.2, 0.2, 0.05);
    let nr = b.fk(rng, nation, region, "region", 0.1);
    let lp = b.fk(rng, line, part, "part", 0.3);
    let lpo = b.fk(rng, lp, orders, "orders", 0.3);
    let lpoc = b.fk(rng, lpo, cust, "customer", 0.35);
    let all = b.fk(rng, lpoc, nr, "nation", 0.35);
    let mut q = b.finish(all);
    q.agg = agg(AggOp::Avg, (2.0, 2.0));
    q.sort = Some(SortSpec { key: 0 });
    q
}

/// Q9: product type profit. part LIKE predicate (poorly estimated) over a
/// five-way join, many groups.
fn q9(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let part = b.complex_filtered(rng, "part", 0, 0.03, 0.08, 0.65);
    let line = b.term("lineitem");
    let supp = b.term("supplier");
    let ps = b.term("partsupp");
    let orders = b.term("orders");
    let lp = b.fk(rng, line, part, "part", 0.3);
    let lps = b.fk(rng, lp, supp, "supplier", 0.3);
    let lpsp = b.fk(rng, lps, ps, "partsupp", 0.35);
    let all = b.fk(rng, lpsp, orders, "orders", 0.35);
    let mut q = b.finish(all);
    q.agg = agg(AggOp::Sum, (150.0, 200.0));
    q.sort = Some(SortSpec { key: 0 });
    q
}

/// Q10: returned item reporting. Four-way join, large group count, top-20.
fn q10(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let cust = b.term("customer");
    let orders = b.filtered(rng, "orders", 2, 0.03, 0.045, 0.15);
    let line = b.filtered(rng, "lineitem", 4, 0.24, 0.26, 0.1);
    let nation = b.term("nation");
    let oc = b.fk(rng, orders, cust, "customer", 0.2);
    let loc = b.fk(rng, line, oc, "orders", 0.3);
    let all = b.fk(rng, loc, nation, "nation", 0.2);
    let groups = b.rows("customer") * 0.03;
    let mut q = b.finish(all);
    q.agg = agg(AggOp::Sum, groups_pair(rng, groups * 0.5, groups * 1.5, 0.3));
    q.sort = Some(SortSpec { key: 2 });
    q.limit = Some(20.0);
    q
}

/// Q11: important stock identification, with a HAVING filter.
fn q11(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let ps = b.term("partsupp");
    let supp = b.term("supplier");
    let nation = b.filtered(rng, "nation", 0, 0.04, 0.04, 0.1);
    let sn = b.fk(rng, supp, nation, "nation", 0.15);
    let all = b.fk(rng, ps, sn, "supplier", 0.25);
    let groups = b.rows("part") * 0.04;
    let mut q = b.finish(all);
    q.agg = agg(AggOp::Sum, groups_pair(rng, groups * 0.6, groups * 1.4, 0.3));
    q.post_filter = Some(crate::util::sel_pair(rng, 0.005, 0.02, 0.55));
    q.sort = Some(SortSpec { key: 1 });
    q
}

/// Q12: shipping mode / order priority. orders ⋈ lineitem on the shared
/// clustered key — merge-join friendly.
fn q12(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let orders = b.term("orders");
    let line = b.filtered(rng, "lineitem", 3, 0.008, 0.012, 0.2);
    let lo = b.fk(rng, line, orders, "orders", 0.2);
    let mut q = b.finish(lo);
    q.agg = agg(AggOp::Count, (2.0, 2.0));
    q.sort = Some(SortSpec { key: 0 });
    q
}

/// Q13: customer distribution. customer joined to filtered orders (comment
/// LIKE — badly estimated), two-level aggregation approximated by one.
fn q13(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let cust = b.term("customer");
    let orders = b.complex_filtered(rng, "orders", 3, 0.95, 0.99, 0.4);
    let all = b.fk(rng, orders, cust, "customer", 0.25);
    let mut q = b.finish(all);
    q.agg = agg(AggOp::Count, (40.0, 45.0));
    q.sort = Some(SortSpec { key: 4 });
    q
}

/// Q14: promotion effect. lineitem (narrow date window) ⋈ part.
fn q14(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let line = b.filtered(rng, "lineitem", 3, 0.01, 0.016, 0.2);
    let part = b.term("part");
    let lp = b.fk(rng, line, part, "part", 0.3);
    let mut q = b.finish(lp);
    q.agg = agg(AggOp::Sum, (1.0, 1.0));
    q
}

/// Q15: top supplier, via the `revenue` view — a derived aggregated
/// subquery joined back to supplier.
fn q15(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    // Derived: per-supplier revenue over a date window.
    let mut inner_b = SpecBuilder::new(cat);
    let line = inner_b.filtered(rng, "lineitem", 3, 0.05, 0.065, 0.2);
    let suppliers = inner_b.rows("supplier");
    let mut derived = inner_b.finish(line);
    derived.agg = agg(AggOp::Sum, groups_pair(rng, suppliers * 0.9, suppliers, 0.1));

    let mut b = SpecBuilder::new(cat);
    let supp = b.term("supplier");
    let joined = b.domain_join(
        rng,
        supp,
        crate::spec::JoinInput::Derived(Box::new(derived)),
        JoinType::Inner,
        b.rows("supplier"),
        0.2,
    );
    let mut q = b.finish(joined);
    q.post_filter = Some(crate::util::sel_pair(rng, 1e-4, 1e-3, 0.5));
    q.sort = Some(SortSpec { key: 0 });
    q
}

/// Q16: parts/supplier relationship. Anti join against complained-about
/// suppliers.
fn q16(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let ps = b.term("partsupp");
    let part = b.filtered(rng, "part", 3, 0.08, 0.12, 0.3);
    let supp = b.complex_filtered(rng, "supplier", 2, 0.0003, 0.001, 0.7);
    let psp = b.fk(rng, ps, part, "part", 0.25);
    let anti = b.match_join(rng, psp, supp, JoinType::Anti, 0.0003, 0.001, 0.5);
    let mut q = b.finish(anti);
    q.agg = agg(AggOp::Count, groups_pair(rng, 800.0, 1200.0, 0.3));
    q.sort = Some(SortSpec { key: 5 });
    q
}

/// Q17: small-quantity-order revenue. part ⋈ lineitem with a correlated
/// per-part average subquery (derived aggregate).
fn q17(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let parts = {
        let b = SpecBuilder::new(cat);
        b.rows("part")
    };
    // Derived: avg quantity per part over all of lineitem.
    let mut inner_b = SpecBuilder::new(cat);
    let l_all = inner_b.term("lineitem");
    let mut derived = inner_b.finish(l_all);
    derived.agg = agg(AggOp::Avg, (parts, parts * 1.05));

    let mut b = SpecBuilder::new(cat);
    let line = b.term("lineitem");
    let part = b.filtered(rng, "part", 3, 0.0008, 0.0015, 0.5);
    let lp = b.fk(rng, line, part, "part", 0.35);
    let joined = b.domain_join(
        rng,
        lp,
        crate::spec::JoinInput::Derived(Box::new(derived)),
        JoinType::Inner,
        parts,
        0.3,
    );
    let mut q = b.finish(joined);
    q.post_filter = Some(crate::util::sel_pair(rng, 0.25, 0.35, 0.3));
    q.agg = agg(AggOp::Sum, (1.0, 1.0));
    q
}

/// Q18: large-volume customers. Semi join against an aggregated HAVING
/// subquery, then a three-way join, top-100.
fn q18(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let orders_cnt = {
        let b = SpecBuilder::new(cat);
        b.rows("orders")
    };
    // Derived: orderkeys whose total quantity exceeds a threshold.
    let mut inner_b = SpecBuilder::new(cat);
    let l_all = inner_b.term("lineitem");
    let mut derived = inner_b.finish(l_all);
    derived.agg = agg(AggOp::Sum, (orders_cnt, orders_cnt * 1.02));
    derived.post_filter = Some(crate::util::sel_pair(rng, 2e-5, 2e-4, 0.6));

    let mut b = SpecBuilder::new(cat);
    let cust = b.term("customer");
    let orders = b.term("orders");
    let line = b.term("lineitem");
    let o_semi = b.domain_join(
        rng,
        orders,
        crate::spec::JoinInput::Derived(Box::new(derived)),
        JoinType::Semi,
        orders_cnt,
        0.3,
    );
    let oc = b.fk(rng, o_semi, cust, "customer", 0.25);
    let all = b.fk(rng, line, oc, "orders", 0.3);
    let mut q = b.finish(all);
    q.agg = agg(AggOp::Sum, groups_pair(rng, 50.0, 150.0, 0.4));
    q.sort = Some(SortSpec { key: 3 });
    q.limit = Some(100.0);
    q
}

/// Q19: discounted revenue. Triple-OR predicate — the benchmark's worst
/// estimation case — as a separate filter above the join.
fn q19(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let line = b.filtered(rng, "lineitem", 4, 0.02, 0.04, 0.3);
    let part = b.complex_filtered(rng, "part", 3, 0.001, 0.003, 0.85);
    let lp = b.fk(rng, line, part, "part", 0.45);
    let mut q = b.finish(lp);
    q.agg = agg(AggOp::Sum, (1.0, 1.0));
    q
}

/// Q20: potential part promotion. Supplier semi-joined with a derived
/// partsupp⋈part availability subquery, then nation filter.
fn q20(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut inner_b = SpecBuilder::new(cat);
    let ps = inner_b.term("partsupp");
    let part = inner_b.filtered(rng, "part", 0, 0.008, 0.015, 0.5);
    let psp = inner_b.fk(rng, ps, part, "part", 0.3);
    let suppliers = inner_b.rows("supplier");
    let mut derived = inner_b.finish(psp);
    derived.agg = agg(AggOp::Sum, groups_pair(rng, suppliers * 0.3, suppliers * 0.6, 0.3));

    let mut b = SpecBuilder::new(cat);
    let supp = b.term("supplier");
    let nation = b.filtered(rng, "nation", 0, 0.04, 0.04, 0.1);
    let sn = b.fk(rng, supp, nation, "nation", 0.15);
    let semi = b.domain_join(
        rng,
        sn,
        crate::spec::JoinInput::Derived(Box::new(derived)),
        JoinType::Semi,
        b.rows("supplier"),
        0.3,
    );
    let mut q = b.finish(semi);
    q.sort = Some(SortSpec { key: 0 });
    q
}

/// Q21: suppliers who kept orders waiting. Semi and anti self-joins of
/// lineitem, four-way join, top-100.
fn q21(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let supp = b.term("supplier");
    let line = b.filtered(rng, "lineitem", 4, 0.45, 0.55, 0.25);
    let orders = b.filtered(rng, "orders", 4, 0.48, 0.50, 0.1);
    let nation = b.filtered(rng, "nation", 0, 0.04, 0.04, 0.1);
    let l2 = b.term("lineitem");
    let l3 = b.term("lineitem");
    let ls = b.fk(rng, line, supp, "supplier", 0.25);
    let lso = b.fk(rng, ls, orders, "orders", 0.3);
    let lson = b.fk(rng, lso, nation, "nation", 0.2);
    let semi = b.match_join(rng, lson, l2, JoinType::Semi, 0.85, 0.95, 0.3);
    let anti = b.match_join(rng, semi, l3, JoinType::Anti, 0.5, 0.7, 0.4);
    let groups = b.rows("supplier") * 0.02;
    let mut q = b.finish(anti);
    q.agg = agg(AggOp::Count, groups_pair(rng, groups * 0.5, groups * 1.5, 0.35));
    q.sort = Some(SortSpec { key: 6 });
    q.limit = Some(100.0);
    q
}

/// Q22: global sales opportunity. Customers with no orders (anti join),
/// phone-prefix filter as a separate node.
fn q22(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
    let mut b = SpecBuilder::new(cat);
    let cust = b.complex_filtered(rng, "customer", 2, 0.08, 0.10, 0.5);
    let orders = b.term("orders");
    let anti = b.match_join(rng, cust, orders, JoinType::Anti, 0.62, 0.68, 0.3);
    let mut q = b.finish(anti);
    q.post_filter = Some(crate::util::sel_pair(rng, 0.45, 0.55, 0.25));
    q.agg = agg(AggOp::Count, (7.0, 7.0));
    q.sort = Some(SortSpec { key: 7 });
    q
}

/// A tiny amount of per-query physical variety: some instances drop the
/// limit or flip aggregate ops, as real parameter substitution does.
fn jitter(q: &mut QuerySpec, rng: &mut dyn RngCore) {
    if let Some(a) = &mut q.agg {
        if rng.gen_bool(0.15) {
            a.op = AggOp::Avg;
        }
    }
}

macro_rules! tpl {
    ($id:expr, $name:expr, $f:ident) => {
        Template {
            id: $id,
            name: $name,
            gen: {
                fn wrapped(cat: &Catalog, rng: &mut dyn RngCore) -> QuerySpec {
                    let mut q = $f(cat, rng);
                    jitter(&mut q, rng);
                    q
                }
                wrapped
            },
        }
    };
}

/// All 22 TPC-H templates.
pub static TEMPLATES: &[Template] = &[
    tpl!(1, "pricing summary report", q1),
    tpl!(2, "minimum cost supplier", q2),
    tpl!(3, "shipping priority", q3),
    tpl!(4, "order priority checking", q4),
    tpl!(5, "local supplier volume", q5),
    tpl!(6, "forecasting revenue change", q6),
    tpl!(7, "volume shipping", q7),
    tpl!(8, "national market share", q8),
    tpl!(9, "product type profit", q9),
    tpl!(10, "returned item reporting", q10),
    tpl!(11, "important stock identification", q11),
    tpl!(12, "shipping modes and order priority", q12),
    tpl!(13, "customer distribution", q13),
    tpl!(14, "promotion effect", q14),
    tpl!(15, "top supplier", q15),
    tpl!(16, "parts/supplier relationship", q16),
    tpl!(17, "small-quantity-order revenue", q17),
    tpl!(18, "large volume customer", q18),
    tpl!(19, "discounted revenue", q19),
    tpl!(20, "potential part promotion", q20),
    tpl!(21, "suppliers who kept orders waiting", q21),
    tpl!(22, "global sales opportunity", q22),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Workload;
    use crate::executor::Executor;
    use crate::optimizer::Optimizer;
    use crate::operators::OpKind;
    use crate::plan::Plan;
    use rand::SeedableRng;

    fn build(cat: &Catalog, t: &Template, seed: u64) -> Plan {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let spec = (t.gen)(cat, &mut rng);
        let mut root = Optimizer::new(cat).build(&spec, &mut rng);
        Executor::new(cat).run(&mut root, &mut rng);
        Plan { root, workload: Workload::TpcH, template_id: t.id, query_id: 0 }
    }

    #[test]
    fn q1_is_a_single_table_aggregate() {
        let cat = Catalog::tpch(1.0);
        let p = build(&cat, &TEMPLATES[0], 1);
        let kinds: Vec<OpKind> = p.root.postorder().iter().map(|n| n.op.kind()).collect();
        assert!(kinds.contains(&OpKind::Scan));
        assert!(kinds.contains(&OpKind::Aggregate));
        assert!(kinds.contains(&OpKind::Sort));
        assert!(!kinds.contains(&OpKind::Join));
    }

    #[test]
    fn q5_has_five_joins() {
        let cat = Catalog::tpch(1.0);
        let p = build(&cat, &TEMPLATES[4], 2);
        let joins = p.root.postorder().iter().filter(|n| n.op.kind() == OpKind::Join).count();
        assert_eq!(joins, 5);
    }

    #[test]
    fn q15_contains_a_derived_aggregate_below_a_join() {
        let cat = Catalog::tpch(1.0);
        let p = build(&cat, &TEMPLATES[14], 3);
        // There must be an Aggregate that is a descendant of a Join.
        fn has_agg_below_join(node: &crate::plan::PlanNode, below_join: bool) -> bool {
            let is_join = node.op.kind() == OpKind::Join;
            if below_join && node.op.kind() == OpKind::Aggregate {
                return true;
            }
            node.children.iter().any(|c| has_agg_below_join(c, below_join || is_join))
        }
        assert!(has_agg_below_join(&p.root, false));
    }

    #[test]
    fn average_plan_size_matches_paper_ballpark() {
        // Paper: average TPC-H plan has ~18 operators. Ours should be in
        // the same regime (roughly 5-25).
        let cat = Catalog::tpch(1.0);
        let mut total = 0usize;
        for (i, t) in TEMPLATES.iter().enumerate() {
            total += build(&cat, t, 100 + i as u64).node_count();
        }
        let avg = total as f64 / TEMPLATES.len() as f64;
        assert!(avg > 5.0 && avg < 25.0, "average plan size {avg}");
    }

    #[test]
    fn template_latencies_span_orders_of_magnitude() {
        let cat = Catalog::tpch(1.0);
        let lats: Vec<f64> =
            TEMPLATES.iter().enumerate().map(|(i, t)| build(&cat, t, 200 + i as u64).latency_ms()).collect();
        let min = lats.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lats.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 10.0, "latency spread too small: {min}..{max}");
    }
}
