//! Logical query specifications.
//!
//! A [`QuerySpec`] is what a parsed+rewritten SQL query looks like before
//! physical planning: base relations with predicates, a join tree, optional
//! aggregation / sorting / limiting. Workload templates (`workload::tpch`,
//! `workload::tpcds`) sample a `QuerySpec` per query — drawing predicate
//! selectivities, join skews and estimation errors from template-specific
//! ranges — and the [`crate::optimizer`] lowers it to a physical [`crate::plan::Plan`].
//!
//! Each predicate and join carries **two** selectivity-like values: the
//! *true* one (used by the executor/simulator to derive ground-truth
//! cardinalities and latencies) and the *estimated* one (used by the
//! optimizer for costing, and the only value surfaced to prediction models).
//! The gap between them reproduces the real-world cardinality-estimation
//! errors that make query performance prediction hard.

use crate::catalog::TableId;
use crate::operators::{AggOp, JoinType};
use serde::{Deserialize, Serialize};

/// A predicate on a single column of a base relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterSpec {
    /// Column the predicate applies to.
    pub col: usize,
    /// True fraction of rows satisfying the predicate.
    pub true_sel: f64,
    /// The optimizer's (erroneous) selectivity estimate.
    pub est_sel: f64,
    /// When true, the predicate is too complex to push into the scan and
    /// becomes a separate Filter node (e.g. multi-way OR, LIKE chains).
    pub separate_node: bool,
}

/// A base relation reference with an optional predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableTerm {
    /// Referenced table.
    pub table: TableId,
    /// Optional pushed-down or separate filter.
    pub filter: Option<FilterSpec>,
}

/// How a join's output cardinality is derived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JoinCard {
    /// Foreign-key equijoin: `out = l · r / rows(pk_table)`, times the
    /// hidden `skew` the optimizer does not know about.
    ForeignKey {
        /// Primary-key side relation defining the key domain.
        pk_table: TableId,
        /// Hidden correlation multiplier (true cardinality only).
        skew: f64,
    },
    /// Semi/anti join: `out = outer · match_frac` (resp. `1 − match_frac`).
    MatchFraction {
        /// True fraction of outer rows with a match.
        true_frac: f64,
        /// Optimizer's estimate of the match fraction.
        est_frac: f64,
    },
    /// Explicit key-domain size (for non-FK equijoins).
    Domain {
        /// True size of the join-key domain.
        rows: f64,
        /// Hidden correlation multiplier.
        skew: f64,
    },
}

/// One side of a join.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JoinInput {
    /// A base relation (index into [`QuerySpec::terms`]).
    Term(usize),
    /// A nested join subtree (bushy plans).
    Join(Box<JoinSpec>),
    /// A derived table: an aggregated subquery planned recursively
    /// (e.g. TPC-H Q15's revenue view).
    Derived(Box<QuerySpec>),
}

/// A logical join between two inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinSpec {
    /// Outer (driving/probe) input.
    pub left: JoinInput,
    /// Inner (build/lookup) input.
    pub right: JoinInput,
    /// Logical join type.
    pub jtype: JoinType,
    /// Output-cardinality model.
    pub card: JoinCard,
}

/// Aggregation in a query block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    /// Aggregate function.
    pub op: AggOp,
    /// True number of output groups (1 = no GROUP BY).
    pub groups: f64,
    /// Optimizer's estimate of the group count.
    pub est_groups: f64,
    /// Eligible for parallel partial aggregation.
    pub partial: bool,
}

/// ORDER BY in a query block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SortSpec {
    /// Canonical sort-key ordinal (one-hot "Sort Key" feature,
    /// `0..MAX_SORT_KEYS`).
    pub key: usize,
}

/// Number of canonical sort keys distinguished by the Sort featurization.
pub const MAX_SORT_KEYS: usize = 8;

/// A logical query block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Base relations referenced by the block.
    pub terms: Vec<TableTerm>,
    /// Join structure over the terms (`Term(0)` for single-table queries).
    pub join: JoinInput,
    /// Optional HAVING-like filter applied above the join/aggregate,
    /// as (true selectivity, estimated selectivity).
    pub post_filter: Option<(f64, f64)>,
    /// Optional aggregation.
    pub agg: Option<AggSpec>,
    /// Optional ORDER BY.
    pub sort: Option<SortSpec>,
    /// Optional LIMIT.
    pub limit: Option<f64>,
}

impl QuerySpec {
    /// A single-table query block over `term`.
    pub fn single(term: TableTerm) -> QuerySpec {
        QuerySpec {
            terms: vec![term],
            join: JoinInput::Term(0),
            post_filter: None,
            agg: None,
            sort: None,
            limit: None,
        }
    }

    /// Number of join operators the spec implies (for sanity checks).
    pub fn join_count(&self) -> usize {
        fn count(input: &JoinInput) -> usize {
            match input {
                JoinInput::Term(_) => 0,
                JoinInput::Join(j) => 1 + count(&j.left) + count(&j.right),
                JoinInput::Derived(q) => count(&q.join),
            }
        }
        count(&self.join)
    }

    /// Validates internal references (terms exist, selectivities in range).
    ///
    /// Returns a description of the first problem found, if any.
    pub fn validate(&self, num_tables: usize) -> Result<(), String> {
        for (i, t) in self.terms.iter().enumerate() {
            if t.table >= num_tables {
                return Err(format!("term {i} references unknown table {}", t.table));
            }
            if let Some(f) = &t.filter {
                if !(0.0..=1.0).contains(&f.true_sel) || !(0.0..=1.0).contains(&f.est_sel) {
                    return Err(format!("term {i} has selectivity outside [0,1]"));
                }
            }
        }
        fn walk(input: &JoinInput, n_terms: usize, num_tables: usize) -> Result<(), String> {
            match input {
                JoinInput::Term(i) if *i >= n_terms => Err(format!("join references missing term {i}")),
                JoinInput::Term(_) => Ok(()),
                JoinInput::Join(j) => {
                    if let JoinCard::ForeignKey { pk_table, .. } = &j.card {
                        if *pk_table >= num_tables {
                            return Err(format!("join pk_table {pk_table} out of range"));
                        }
                    }
                    walk(&j.left, n_terms, num_tables)?;
                    walk(&j.right, n_terms, num_tables)
                }
                JoinInput::Derived(q) => q.validate(num_tables),
            }
        }
        walk(&self.join, self.terms.len(), num_tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(t: TableId) -> TableTerm {
        TableTerm { table: t, filter: None }
    }

    #[test]
    fn single_table_spec_has_no_joins() {
        let q = QuerySpec::single(term(3));
        assert_eq!(q.join_count(), 0);
        assert!(q.validate(8).is_ok());
    }

    #[test]
    fn join_count_counts_nested_joins() {
        let q = QuerySpec {
            terms: vec![term(0), term(1), term(2)],
            join: JoinInput::Join(Box::new(JoinSpec {
                left: JoinInput::Join(Box::new(JoinSpec {
                    left: JoinInput::Term(0),
                    right: JoinInput::Term(1),
                    jtype: JoinType::Inner,
                    card: JoinCard::Domain { rows: 100.0, skew: 1.0 },
                })),
                right: JoinInput::Term(2),
                jtype: JoinType::Inner,
                card: JoinCard::Domain { rows: 100.0, skew: 1.0 },
            })),
            post_filter: None,
            agg: None,
            sort: None,
            limit: None,
        };
        assert_eq!(q.join_count(), 2);
        assert!(q.validate(8).is_ok());
    }

    #[test]
    fn validate_catches_missing_term() {
        let q = QuerySpec {
            terms: vec![term(0)],
            join: JoinInput::Term(5),
            post_filter: None,
            agg: None,
            sort: None,
            limit: None,
        };
        assert!(q.validate(8).is_err());
    }

    #[test]
    fn validate_catches_bad_table() {
        let q = QuerySpec::single(term(99));
        assert!(q.validate(8).is_err());
    }

    #[test]
    fn validate_catches_bad_selectivity() {
        let q = QuerySpec::single(TableTerm {
            table: 0,
            filter: Some(FilterSpec { col: 0, true_sel: 1.5, est_sel: 0.5, separate_node: false }),
        });
        assert!(q.validate(8).is_err());
    }
}
