//! Dataset generation and train/test splitting.
//!
//! Reproduces the paper's experimental protocol (§6, "Workload" and
//! "Training data"):
//!
//! * queries are sampled from the benchmark's templates and *executed* (here:
//!   simulated) to obtain per-operator latencies;
//! * **TPC-DS** splits by holding out all instances of 10 randomly-selected
//!   templates (the model is evaluated on unseen templates);
//! * **TPC-H** has too few templates for that, so 10% of queries are held
//!   out at random;
//! * Figure 8 uses hold-*one*-template-out.

use crate::catalog::{Catalog, Workload};
use crate::executor::Executor;
use crate::optimizer::Optimizer;
use crate::plan::Plan;
use crate::workload::templates;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A generated workload: executed plans plus the catalog they ran against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// The catalog (schema + statistics) queries were planned against.
    pub catalog: Catalog,
    /// Executed query plans with per-operator latencies.
    pub plans: Vec<Plan>,
}

/// Index-based train/test split of a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Indices of training plans.
    pub train: Vec<usize>,
    /// Indices of test plans.
    pub test: Vec<usize>,
}

impl Dataset {
    /// Generates `n_queries` executed queries for `workload` at
    /// `scale_factor`, deterministically in `seed`.
    ///
    /// Each query samples a template uniformly at random, instantiates it
    /// with fresh parameters, plans it and simulates its execution — the
    /// counterpart of the paper's 20,000 `EXPLAIN ANALYZE` runs.
    pub fn generate(workload: Workload, scale_factor: f64, n_queries: usize, seed: u64) -> Dataset {
        Self::generate_concurrent(workload, scale_factor, n_queries, seed, 1)
    }

    /// Like [`Dataset::generate`], but each query executes under a
    /// multiprogramming level sampled uniformly from `1..=max_mpl`
    /// (the paper's §8 concurrent-query extension; `max_mpl = 1`
    /// reproduces the paper's isolated-execution protocol exactly).
    ///
    /// The sampled load is recorded on every plan node
    /// ([`crate::plan::PlanNode::concurrency`]), where load-aware
    /// featurization ([`crate::features::Featurizer::with_system_load`])
    /// can read it.
    ///
    /// # Panics
    /// Panics if `max_mpl == 0`.
    pub fn generate_concurrent(
        workload: Workload,
        scale_factor: f64,
        n_queries: usize,
        seed: u64,
        max_mpl: u32,
    ) -> Dataset {
        assert!(max_mpl >= 1, "max_mpl must be at least 1");
        let catalog = Catalog::for_workload(workload, scale_factor);
        let tpls = templates(workload);
        let optimizer = Optimizer::new(&catalog);
        let executor = Executor::new(&catalog);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut plans = Vec::with_capacity(n_queries);
        for query_id in 0..n_queries {
            let t = &tpls[rng.gen_range(0..tpls.len())];
            let spec = (t.gen)(&catalog, &mut rng);
            let mut root = optimizer.build(&spec, &mut rng);
            let mpl = if max_mpl == 1 { 1.0 } else { rng.gen_range(1..=max_mpl) as f64 };
            executor.run_with_load(&mut root, mpl, &mut rng);
            plans.push(Plan { root, workload, template_id: t.id, query_id: query_id as u64 });
        }
        Dataset { catalog, plans }
    }

    /// Number of plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Total operator count across all plans (the `|D|` of Equation 7).
    pub fn total_operators(&self) -> usize {
        self.plans.iter().map(Plan::node_count).sum()
    }

    /// The paper's split for the benchmark: hold-out templates for TPC-DS,
    /// random 10% for TPC-H.
    pub fn paper_split(&self, seed: u64) -> Split {
        match self.plans.first().map(|p| p.workload) {
            Some(Workload::TpcDs) => self.split_holdout_templates(10, seed),
            _ => self.split_random(0.10, seed),
        }
    }

    /// Random split holding out `test_frac` of queries (TPC-H protocol).
    pub fn split_random(&self, test_frac: f64, seed: u64) -> Split {
        assert!((0.0..1.0).contains(&test_frac), "test_frac in [0,1)");
        let mut idx: Vec<usize> = (0..self.plans.len()).collect();
        idx.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let n_test = ((self.plans.len() as f64) * test_frac).round() as usize;
        let (test, train) = idx.split_at(n_test.min(idx.len()));
        Split { train: train.to_vec(), test: test.to_vec() }
    }

    /// Holds out all instances of `k` randomly-chosen templates (TPC-DS
    /// protocol: "train on 60 templates, measure on the unseen 10").
    pub fn split_holdout_templates(&self, k: usize, seed: u64) -> Split {
        let mut template_ids: Vec<u32> = self.plans.iter().map(|p| p.template_id).collect();
        template_ids.sort_unstable();
        template_ids.dedup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        template_ids.shuffle(&mut rng);
        let held: Vec<u32> = template_ids.into_iter().take(k).collect();
        self.split_by_templates(&held)
    }

    /// Holds out exactly the given template (Figure 8 protocol).
    pub fn split_hold_one_template(&self, template_id: u32) -> Split {
        self.split_by_templates(&[template_id])
    }

    /// Splits with all instances of `held` templates in the test set.
    pub fn split_by_templates(&self, held: &[u32]) -> Split {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, p) in self.plans.iter().enumerate() {
            if held.contains(&p.template_id) {
                test.push(i);
            } else {
                train.push(i);
            }
        }
        Split { train, test }
    }

    /// Borrows the plans selected by `indices`.
    pub fn select(&self, indices: &[usize]) -> Vec<&Plan> {
        indices.iter().map(|&i| &self.plans[i]).collect()
    }

    /// K-fold cross-validation over *templates*: template ids are shuffled
    /// and partitioned into `k` folds; fold `i`'s test set holds every
    /// instance of its templates (the TPC-DS unseen-template protocol,
    /// repeated so every template is held out exactly once).
    ///
    /// Returns `k` splits. Folds differ in size by at most one template.
    ///
    /// # Panics
    /// Panics if `k == 0` or the dataset has fewer than `k` templates.
    pub fn cross_validate_templates(&self, k: usize, seed: u64) -> Vec<Split> {
        assert!(k > 0, "k must be positive");
        let mut template_ids: Vec<u32> = self.plans.iter().map(|p| p.template_id).collect();
        template_ids.sort_unstable();
        template_ids.dedup();
        assert!(
            template_ids.len() >= k,
            "need at least {k} templates, have {}",
            template_ids.len()
        );
        template_ids.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));

        (0..k)
            .map(|fold| {
                let held: Vec<u32> = template_ids
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % k == fold)
                    .map(|(_, &t)| t)
                    .collect();
                self.split_by_templates(&held)
            })
            .collect()
    }

    /// Mean query latency (ms) over the given indices.
    pub fn mean_latency_ms(&self, indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        indices.iter().map(|&i| self.plans[i].latency_ms()).sum::<f64>() / indices.len() as f64
    }

    /// Per-template mean latency, sorted by template id (Figure 12).
    pub fn latency_by_template(&self) -> Vec<(u32, f64, usize)> {
        let mut acc: std::collections::BTreeMap<u32, (f64, usize)> = Default::default();
        for p in &self.plans {
            let e = acc.entry(p.template_id).or_insert((0.0, 0));
            e.0 += p.latency_ms();
            e.1 += 1;
        }
        acc.into_iter().map(|(id, (sum, n))| (id, sum / n as f64, n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_in_seed() {
        let a = Dataset::generate(Workload::TpcH, 1.0, 20, 7);
        let b = Dataset::generate(Workload::TpcH, 1.0, 20, 7);
        assert_eq!(a.plans, b.plans);
        let c = Dataset::generate(Workload::TpcH, 1.0, 20, 8);
        assert_ne!(a.plans, c.plans);
    }

    #[test]
    fn concurrent_generation_varies_load_and_slows_queries() {
        let iso = Dataset::generate(Workload::TpcH, 1.0, 60, 42);
        let conc = Dataset::generate_concurrent(Workload::TpcH, 1.0, 60, 42, 8);
        // Loads actually vary.
        let loads: std::collections::BTreeSet<u64> =
            conc.plans.iter().map(|p| p.root.concurrency as u64).collect();
        assert!(loads.len() > 3, "expected varied MPLs, got {loads:?}");
        assert!(loads.iter().all(|&l| (1..=8).contains(&l)));
        // Mean latency under load exceeds isolated mean latency.
        let mean = |d: &Dataset| {
            d.plans.iter().map(Plan::latency_ms).sum::<f64>() / d.plans.len() as f64
        };
        assert!(mean(&conc) > mean(&iso) * 1.3, "{} vs {}", mean(&conc), mean(&iso));
        // Isolated generation is untouched by the extension.
        assert!(iso.plans.iter().all(|p| p.root.concurrency == 1.0));
    }

    #[test]
    fn random_split_partitions_everything() {
        let d = Dataset::generate(Workload::TpcH, 1.0, 50, 1);
        let s = d.split_random(0.1, 2);
        assert_eq!(s.train.len() + s.test.len(), 50);
        assert_eq!(s.test.len(), 5);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn holdout_split_separates_templates() {
        let d = Dataset::generate(Workload::TpcDs, 1.0, 120, 3);
        let s = d.split_holdout_templates(10, 4);
        let train_templates: std::collections::HashSet<u32> =
            s.train.iter().map(|&i| d.plans[i].template_id).collect();
        let test_templates: std::collections::HashSet<u32> =
            s.test.iter().map(|&i| d.plans[i].template_id).collect();
        assert!(train_templates.is_disjoint(&test_templates));
        assert!(!s.test.is_empty());
    }

    #[test]
    fn hold_one_template_out_isolates_it() {
        let d = Dataset::generate(Workload::TpcH, 1.0, 100, 5);
        let tid = d.plans[0].template_id;
        let s = d.split_hold_one_template(tid);
        assert!(s.test.iter().all(|&i| d.plans[i].template_id == tid));
        assert!(s.train.iter().all(|&i| d.plans[i].template_id != tid));
    }

    #[test]
    fn latency_by_template_covers_all_queries() {
        let d = Dataset::generate(Workload::TpcH, 1.0, 60, 6);
        let by_template = d.latency_by_template();
        let total: usize = by_template.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, 60);
        for (_, mean, _) in by_template {
            assert!(mean > 0.0);
        }
    }

    #[test]
    fn cross_validation_holds_every_template_out_exactly_once() {
        let d = Dataset::generate(Workload::TpcH, 1.0, 120, 8);
        let folds = d.cross_validate_templates(4, 9);
        assert_eq!(folds.len(), 4);
        // Every plan appears in exactly one test fold.
        let mut test_counts = vec![0usize; d.len()];
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), d.len());
            for &i in &f.test {
                test_counts[i] += 1;
            }
            // Templates never straddle train/test within a fold.
            let test_templates: std::collections::HashSet<u32> =
                f.test.iter().map(|&i| d.plans[i].template_id).collect();
            assert!(f.train.iter().all(|&i| !test_templates.contains(&d.plans[i].template_id)));
        }
        assert!(test_counts.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn cross_validation_rejects_too_many_folds() {
        let d = Dataset::generate(Workload::TpcH, 1.0, 30, 8);
        let _ = d.cross_validate_templates(1000, 0);
    }

    #[test]
    fn paper_split_uses_workload_protocol() {
        let h = Dataset::generate(Workload::TpcH, 1.0, 40, 9);
        let s = h.paper_split(1);
        assert_eq!(s.test.len(), 4); // 10% of 40
        let ds = Dataset::generate(Workload::TpcDs, 1.0, 200, 9);
        let s = ds.paper_split(1);
        let test_templates: std::collections::HashSet<u32> =
            s.test.iter().map(|&i| ds.plans[i].template_id).collect();
        assert!(test_templates.len() <= 10);
    }
}
