//! # qpp-plansim — a PostgreSQL-style planning & execution simulator
//!
//! This crate is the *database substrate* of the QPPNet reproduction. The
//! paper (Marcus & Papaemmanouil, VLDB 2019) trains and evaluates on
//! PostgreSQL executing TPC-H and TPC-DS at scale factor 100; this crate
//! replaces that testbed with a faithful simulator (see DESIGN.md §2 for the
//! substitution argument):
//!
//! * [`catalog`] — TPC-H / TPC-DS schemas, row counts, column statistics
//!   and indexes at a configurable scale factor;
//! * [`spec`] + [`workload`] — logical query templates (all 22 TPC-H and
//!   the 70 PostgreSQL-compatible TPC-DS templates) that sample predicate
//!   selectivities, join skews and *estimation errors* per query;
//! * [`optimizer`] — access-path and join-algorithm selection with a
//!   PostgreSQL-style cost model, producing `EXPLAIN`-like per-node
//!   estimates ([`plan::NodeEst`]);
//! * [`executor`] — a ground-truth latency model with cold-cache effects,
//!   memory spills and other regime switches, producing
//!   `EXPLAIN ANALYZE`-like per-node actuals ([`plan::NodeActual`]);
//! * [`features`] — the paper's Table-2 featurization with training-set
//!   whitening;
//! * [`dataset`] — workload generation and the paper's train/test split
//!   protocols.
//!
//! The crate enforces the fundamental honesty rule of the reproduction:
//! prediction models may read **only** optimizer estimates and catalog
//! statistics; true cardinalities and latencies exist solely as training
//! targets and evaluation ground truth.
//!
//! ```
//! use qpp_plansim::prelude::*;
//!
//! // 50 executed TPC-H queries at scale factor 1.
//! let ds = Dataset::generate(Workload::TpcH, 1.0, 50, 42);
//! let split = ds.paper_split(0);
//! assert_eq!(split.train.len() + split.test.len(), 50);
//!
//! // Feature pipeline: featurizer + whitener fitted on the training split.
//! let fz = Featurizer::new(&ds.catalog);
//! let wh = Whitener::fit(&fz, split.train.iter().map(|&i| &ds.plans[i]));
//! let root_features = wh.features(&fz, &ds.plans[0].root);
//! assert!(!root_features.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cardest;
pub mod catalog;
pub mod dataset;
pub mod executor;
pub mod features;
pub mod operators;
pub mod optimizer;
pub mod plan;
pub mod spec;
pub mod util;
pub mod workload;

/// Convenient glob-import of the most-used types.
pub mod prelude {
    pub use crate::catalog::{Catalog, Workload};
    pub use crate::dataset::{Dataset, Split};
    pub use crate::executor::Executor;
    pub use crate::features::{Featurizer, Whitener};
    pub use crate::operators::OpKind;
    pub use crate::optimizer::Optimizer;
    pub use crate::plan::{Plan, PlanNode};
    pub use crate::spec::QuerySpec;
    pub use crate::workload::{templates, Template};
}
